//! A lightweight Rust lexer: just enough structure for the lint rules.
//!
//! The lexer separates code from comments and string/char literals so the
//! rule engine never mistakes an identifier inside a doc comment or a
//! format string for a real reference. It deliberately does **not** build
//! an AST (no `syn`; the workspace builds offline): brace matching over
//! the token stream is all the downstream span segmentation needs.

/// One lexical token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// What kind of token this is.
    pub kind: TokKind,
}

/// Token categories the lint cares about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `ThreadPool`, ...).
    Ident(String),
    /// Numeric literal, normalized to its source spelling.
    Number(String),
    /// String / char / byte literal (contents discarded).
    Literal,
    /// Any single punctuation character (`{`, `}`, `(`, `:`, ...).
    Punct(char),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment line (line and block comments are both split per line so
/// adjacency checks and marker parsing stay line-oriented).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line this comment text sits on.
    pub line: u32,
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment lines in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source into tokens and comments.
///
/// Handles line/doc comments, nested block comments, string, raw-string,
/// byte-string and char literals, and distinguishes lifetimes from char
/// literals. Unterminated constructs are tolerated (lexing stops at EOF)
/// so the lint degrades gracefully on torn files.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: bytes[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i = lex_block_comment(&bytes, i, &mut line, &mut out.comments);
            }
            '"' => {
                i = lex_string(&bytes, i, &mut line);
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Literal,
                });
            }
            '\'' => {
                i = lex_quote(&bytes, i, &mut line, &mut out.tokens);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                // Raw / byte string literals: the prefix lexes as an ident.
                if matches!(word.as_str(), "r" | "b" | "br")
                    && i < n
                    && (bytes[i] == '"' || bytes[i] == '#')
                {
                    i = lex_raw_string(&bytes, i, &mut line);
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Literal,
                    });
                } else {
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Ident(word),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n {
                    let d = bytes[i];
                    let exponent_sign = (d == '+' || d == '-')
                        && matches!(bytes[i - 1], 'e' | 'E')
                        && bytes[start..i].iter().all(|x| {
                            x.is_ascii_hexdigit()
                                || matches!(x, '.' | '_' | 'e' | 'E' | 'x' | 'o' | 'b')
                        });
                    if d.is_alphanumeric() || d == '_' || d == '.' || exponent_sign {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Number(bytes[start..i].iter().collect()),
                });
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            other => {
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a (possibly nested) block comment starting at `i`; pushes one
/// [`Comment`] per line of its contents. Returns the index just past `*/`.
fn lex_block_comment(
    bytes: &[char],
    i: usize,
    line: &mut u32,
    comments: &mut Vec<Comment>,
) -> usize {
    let n = bytes.len();
    let mut j = i + 2;
    let mut depth = 1usize;
    let mut cur = String::new();
    let mut cur_line = *line;
    while j < n && depth > 0 {
        if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
            depth += 1;
            cur.push_str("/*");
            j += 2;
        } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
            depth -= 1;
            if depth > 0 {
                cur.push_str("*/");
            }
            j += 2;
        } else if bytes[j] == '\n' {
            comments.push(Comment {
                line: cur_line,
                text: std::mem::take(&mut cur),
            });
            *line += 1;
            cur_line = *line;
            j += 1;
        } else {
            cur.push(bytes[j]);
            j += 1;
        }
    }
    if !cur.is_empty() {
        comments.push(Comment {
            line: cur_line,
            text: cur,
        });
    }
    j
}

/// Consumes a `"..."` string literal starting at the opening quote.
fn lex_string(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consumes a raw(-byte) string starting at the first `#` or `"` after the
/// `r`/`br` prefix.
fn lex_raw_string(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = i;
    let mut hashes = 0usize;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || bytes[j] != '"' {
        return j; // not actually a raw string; treat prefix as consumed
    }
    j += 1;
    while j < n {
        if bytes[j] == '\n' {
            *line += 1;
            j += 1;
        } else if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && bytes[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    j
}

/// Disambiguates `'a` (lifetime), `'x'` (char) and `'\n'` (escaped char).
fn lex_quote(bytes: &[char], i: usize, line: &mut u32, tokens: &mut Vec<Token>) -> usize {
    let n = bytes.len();
    if i + 1 >= n {
        return i + 1;
    }
    let next = bytes[i + 1];
    if next == '\\' {
        // Escaped char literal: skip to the closing quote.
        let mut j = i + 2;
        while j < n && bytes[j] != '\'' {
            j += 1;
        }
        tokens.push(Token {
            line: *line,
            kind: TokKind::Literal,
        });
        return (j + 1).min(n);
    }
    if i + 2 < n && bytes[i + 2] == '\'' && next != '\'' {
        if next == '\n' {
            *line += 1;
        }
        tokens.push(Token {
            line: *line,
            kind: TokKind::Literal,
        });
        return i + 3;
    }
    // Lifetime: consume the quote; the label lexes as a normal ident.
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let l = lex("// ThreadPool here\nfn f() {} /* F32x4 */");
        assert!(l.tokens.iter().all(|t| !t.is_ident("ThreadPool")));
        assert!(l.tokens.iter().all(|t| !t.is_ident("F32x4")));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("ThreadPool"));
        assert!(l.comments[1].text.contains("F32x4"));
    }

    #[test]
    fn strings_hide_identifiers() {
        let l = lex("let s = \"ThreadPool {}\"; let r = r#\"F32x4 \"x\" \"#;");
        assert!(!idents("").contains(&"ThreadPool".into()));
        assert!(l.tokens.iter().all(|t| !t.is_ident("ThreadPool")));
        assert!(l.tokens.iter().all(|t| !t.is_ident("F32x4")));
        // Braces inside strings must not unbalance brace matching.
        assert!(l.tokens.iter().all(|t| !t.is_punct('{')));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"a".into()));
        assert!(ids.contains(&"str".into()));
        let l = lex("let c = 'x'; let nl = '\\n';");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            2
        );
        assert!(l.tokens.iter().all(|t| !t.is_ident("x")));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("fn a() {}\n\nfn b() {}\n");
        let b = l.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ tail */ fn f() {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(l.tokens.iter().all(|t| !t.is_ident("outer")));
    }

    #[test]
    fn numbers_including_exponents() {
        let l = lex("let x = 1.5e-3 + 0xff + 42;");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Number(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["1.5e-3", "0xff", "42"]);
    }
}
