//! Per-file analysis state: lexed tokens, segmented spans, declared
//! `effort_loc` values, and line/comment lookup helpers.

use crate::lexer::{lex, Lexed, TokKind};
use crate::markers::{parse_markers, MarkerError, Rung};
use crate::spans::{segment, Segmented};
use std::collections::HashMap;

/// One analyzed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path (used verbatim in findings).
    pub rel_path: String,
    /// Raw source lines (index 0 = line 1).
    pub lines: Vec<String>,
    /// Lexer output.
    pub lexed: Lexed,
    /// Span segmentation with attached markers.
    pub segmented: Segmented,
    /// Marker comments that failed to parse.
    pub marker_errors: Vec<MarkerError>,
    /// Declared `effort_loc` values: (rung, declared, source line).
    pub effort_decls: Vec<(Rung, u32, u32)>,
    comments_by_line: HashMap<u32, String>,
}

impl SourceFile {
    /// Lexes, segments and indexes one file's source text.
    pub fn from_source(rel_path: String, src: String) -> Self {
        let lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let lexed = lex(&src);
        let (markers, marker_errors) = parse_markers(&lexed.comments);
        let segmented = segment(&lexed, &markers);
        let mut comments_by_line: HashMap<u32, String> = HashMap::new();
        for c in &lexed.comments {
            let slot = comments_by_line.entry(c.line).or_default();
            slot.push_str(&c.text);
            slot.push(' ');
        }
        let effort_decls = parse_effort_decls(&lexed);
        Self {
            rel_path,
            lines,
            lexed,
            segmented,
            marker_errors,
            effort_decls,
            comments_by_line,
        }
    }

    /// Raw text of 1-based `line`, if it exists.
    pub fn line(&self, line: u32) -> Option<&str> {
        self.lines.get(line as usize - 1).map(String::as_str)
    }

    /// Concatenated comment text on 1-based `line`, if any.
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        self.comments_by_line.get(&line).map(String::as_str)
    }

    /// Whether the ladder rules apply to this file: it either declares
    /// `effort_loc` values in a `VariantInfo` literal or carries
    /// ninja-lint attribution markers.
    pub fn is_kernel_file(&self) -> bool {
        !self.effort_decls.is_empty()
            || self.segmented.skip_file.is_some()
            || self.segmented.spans.iter().any(|s| s.is_attributed())
    }
}

/// Finds `effort_loc: <int>` struct-literal fields and pairs each with
/// the `Variant::<Rung>` named just before it in the same literal.
///
/// Declarations whose nearby variant is not a literal rung (e.g. a
/// loop variable, as in the chaos kernel) are skipped — such files must
/// either be annotated or marked skip-file, which rule NL006 enforces.
fn parse_effort_decls(lexed: &Lexed) -> Vec<(Rung, u32, u32)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("effort_loc") {
            continue;
        }
        let Some(colon) = toks.get(i + 1) else {
            continue;
        };
        if !colon.is_punct(':') {
            continue;
        }
        let Some(TokKind::Number(n)) = toks.get(i + 2).map(|t| &t.kind) else {
            continue;
        };
        let Ok(declared) = n.replace('_', "").parse::<u32>() else {
            continue;
        };
        // Backward scan for `Variant :: <rung>` in the same literal.
        let lo = i.saturating_sub(12);
        let mut rung = None;
        for j in (lo..i).rev() {
            if toks[j].is_ident("Variant")
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
            {
                rung = toks
                    .get(j + 3)
                    .and_then(|t| t.ident())
                    .and_then(|name| Rung::from_name(&name.to_lowercase()));
                break;
            }
        }
        if let Some(rung) = rung {
            out.push((rung, declared, toks[i].line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_decls_pair_with_variants() {
        let src = r#"
            fn spec() -> [VariantInfo; 2] {
                [
                    VariantInfo { variant: Variant::Naive, effort_loc: 0, what: "" },
                    VariantInfo { variant: Variant::Ninja, effort_loc: 70, what: "" },
                ]
            }
        "#;
        let f = SourceFile::from_source("x.rs".into(), src.into());
        assert_eq!(
            f.effort_decls
                .iter()
                .map(|(r, d, _)| (*r, *d))
                .collect::<Vec<_>>(),
            [(Rung::Naive, 0), (Rung::Ninja, 70)]
        );
        assert!(f.is_kernel_file());
    }

    #[test]
    fn computed_effort_loc_is_not_a_decl() {
        // The chaos kernel maps over Variant::ALL with a non-literal field.
        let src =
            "fn f() { Variant::ALL.map(|v| VariantInfo { variant: v, effort_loc: idx(v) }); }";
        let f = SourceFile::from_source("x.rs".into(), src.into());
        assert!(f.effort_decls.is_empty());
        assert!(!f.is_kernel_file());
    }

    #[test]
    fn struct_declarations_are_not_decls() {
        let src = "pub struct VariantInfo { pub variant: Variant, pub effort_loc: u32 }";
        let f = SourceFile::from_source("x.rs".into(), src.into());
        assert!(f.effort_decls.is_empty());
        assert!(!f.is_kernel_file());
    }

    #[test]
    fn line_and_comment_lookup() {
        let f = SourceFile::from_source(
            "x.rs".into(),
            "fn a() {}\n// SAFETY: fine\nfn b() {}\n".into(),
        );
        assert_eq!(f.line(3), Some("fn b() {}"));
        assert!(f.comment_on(2).unwrap().contains("SAFETY:"));
        assert!(f.comment_on(1).is_none());
        assert!(f.line(99).is_none());
    }
}
