//! `ninja-lint`: a taxonomy-enforcing static analysis pass over the
//! kernel suite.
//!
//! The reproduction's entire argument rests on the integrity of its
//! optimization ladder: a *naive* variant must really be serial scalar
//! code, the *parallel* rung must really be "naive plus threads", and the
//! low-effort endpoint must not smuggle in Ninja tricks. A stray
//! `ThreadPool` call inside a naive body would silently corrupt every
//! reported Ninja gap — so this crate audits the sources mechanically:
//!
//! * **Rung purity** (NL001/NL002): variant bodies, segmented via
//!   `// ninja-lint:` markers, must not reference constructs their rung
//!   forbids (thread runtime in naive/simd; explicit SIMD or `unsafe` in
//!   naive/parallel).
//! * **Ninja evidence** (NL003): a ninja tier must actually use explicit
//!   vector types.
//! * **Effort honesty** (NL004): declared `effort_loc` must be within a
//!   loose tolerance of the measured source-line diff against naive.
//! * **`unsafe` audit** (NL005): every unsafe site across the workspace
//!   crates needs an adjacent `// SAFETY:` justification.
//! * **Coverage & hygiene** (NL006/NL007): every rung must be annotated,
//!   and marker typos fail loudly.
//! * **Assembly evidence** (NL008/NL009, `--asm` mode): the [`asm`] and
//!   [`vecprofile`] modules parse `rustc --emit asm` output, attribute
//!   symbols back to rungs, and check that simd/ninja rungs actually
//!   compiled to vector code (and report when the compiler bridged the
//!   gap on a naive rung by itself).
//! * **Ordering audit** (NL010): every `Ordering::Relaxed` site and
//!   `static mut` declaration needs an adjacent `// ORDERING:`
//!   justification, the concurrency sibling of NL005.
//!
//! The crate is std-only (a lightweight hand-rolled lexer, no `syn`),
//! consistent with the offline `third_party/` build, and ships both as a
//! library (unit-testable rule engine, usable as a preflight from the
//! bench harness) and as the `ninja-lint` binary with `--deny-warnings`
//! for CI.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
pub mod lexer;
pub mod markers;
pub mod report;
pub mod rules;
pub mod source;
pub mod spans;
pub mod vecprofile;

pub use asm::{demangle, detect_arch, parse_listing, Arch, AsmFunction, AsmListing, InsnCounts};
pub use report::{FindingRecord, LintReport, RuleRecord};
pub use rules::{Finding, RuleId, Severity, ALL_RULES};
pub use source::SourceFile;
pub use vecprofile::{
    asm_audit, check_asm, profile_rungs, render_profiles, AsmAudit, AsmOptions, VecProfile,
};

use std::path::{Path, PathBuf};

/// Crates whose sources the workspace-wide lint scans — every workspace
/// crate plus the vendored lock-free deque, whose unsafe/atomic density
/// is exactly what the audits exist for. The kernel-ladder rules
/// self-select per file; the SAFETY (NL005) and ORDERING (NL010) audits
/// apply to all of them.
pub const AUDITED_CRATES: [&str; 12] = [
    "crates/bench",
    "crates/core",
    "crates/counters",
    "crates/kernels",
    "crates/lint",
    "crates/model",
    "crates/parallel",
    "crates/perfdb",
    "crates/probe",
    "crates/serve",
    "crates/simd",
    "third_party/crossbeam",
];

/// An I/O or configuration error from a lint run.
#[derive(Debug)]
pub struct LintError(pub String);

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for LintError {}

/// Lints an explicit set of files. Paths are reported relative to
/// `root` when they live under it, verbatim otherwise.
///
/// # Errors
///
/// Returns a [`LintError`] when a file cannot be read.
pub fn analyze_files(paths: &[PathBuf], root: &Path) -> Result<LintReport, LintError> {
    let mut findings = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| LintError(format!("cannot read {}: {e}", path.display())))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .into_owned();
        let file = SourceFile::from_source(rel, src);
        findings.extend(rules::check_file(&file));
    }
    Ok(LintReport::new(
        root.to_string_lossy().into_owned(),
        paths.len(),
        findings,
    ))
}

/// Collects the `.rs` sources of every audited crate under `root`.
///
/// # Errors
///
/// Returns a [`LintError`] when an audited crate's `src/` directory is
/// missing or unreadable — a silently-empty scan must not pass CI.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    for krate in AUDITED_CRATES {
        let dir = root.join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        out.extend(files);
    }
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (binaries live in
/// `src/bin/`, so a flat scan would miss them).
pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates [`LintError`] from source collection or file reads.
pub fn analyze_workspace(root: &Path) -> Result<LintReport, LintError> {
    let paths = workspace_sources(root)?;
    analyze_files(&paths, root)
}

/// Walks upward from `start` to the first directory containing a
/// `Cargo.toml` with a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/lint sits two levels below the workspace root")
            .to_path_buf()
    }

    #[test]
    fn workspace_sources_cover_all_audited_crates() {
        let root = repo_root();
        let files = workspace_sources(&root).unwrap();
        for krate in AUDITED_CRATES {
            assert!(
                files.iter().any(|p| p.starts_with(root.join(krate))),
                "no sources found under {krate}"
            );
        }
        assert!(files.len() > 20, "expected a real suite, got {files:?}");
    }

    #[test]
    fn missing_root_is_an_error_not_an_empty_pass() {
        let err = analyze_workspace(Path::new("/nonexistent-lint-root")).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
    }

    #[test]
    fn find_workspace_root_from_nested_dir() {
        let root = repo_root();
        let nested = root.join("crates/lint/src");
        assert_eq!(find_workspace_root(&nested), Some(root));
        assert_eq!(find_workspace_root(Path::new("/")), None);
    }
}
