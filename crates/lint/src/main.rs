//! The `ninja-lint` binary: taxonomy enforcement for CI and preflights.
//!
//! ```text
//! ninja-lint [--root DIR] [--json PATH] [--deny-warnings] [--list-rules] [FILES...]
//! ninja-lint --asm [--target-cpu LEVEL] [--asm-file PATH]... [--deny-warnings]
//! ```
//!
//! With no `FILES`, lints the audited crates of the workspace found at
//! `--root` (default: walk up from the current directory). Findings are
//! printed one per line as `file:line: [ID name] message`; `--json`
//! additionally writes the machine-readable report (`-` for stdout).
//! With `--deny-warnings` any warning-severity finding makes the exit
//! status 1; I/O and usage errors exit 2.
//!
//! `--asm` switches to the vectorization oracle: it compiles
//! `crates/kernels` with `--emit asm` (optionally at a specific
//! `-C target-cpu` level), attributes the emitted symbols back to rungs,
//! prints one grep-friendly `vecprofile kernel/rung: ...` line per cell,
//! and runs the NL008/NL009 evidence rules. `--asm-file` audits
//! pre-emitted `.s` listings instead of driving cargo.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line.
struct Args {
    root: Option<PathBuf>,
    json: Option<String>,
    deny_warnings: bool,
    list_rules: bool,
    asm: bool,
    target_cpu: Option<String>,
    asm_files: Vec<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        deny_warnings: false,
        list_rules: false,
        asm: false,
        target_cpu: None,
        asm_files: Vec::new(),
        files: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    argv.next().ok_or("--root needs a directory")?,
                ));
            }
            "--json" => {
                args.json = Some(argv.next().ok_or("--json needs a path (or -)")?);
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--list-rules" => args.list_rules = true,
            "--asm" => args.asm = true,
            "--target-cpu" => {
                args.target_cpu = Some(
                    argv.next()
                        .ok_or("--target-cpu needs a level (e.g. x86-64-v3)")?,
                );
            }
            "--asm-file" => {
                args.asm_files.push(PathBuf::from(
                    argv.next().ok_or("--asm-file needs a .s path")?,
                ));
            }
            "--help" | "-h" => {
                return Err(concat!(
                    "usage: ninja-lint [--root DIR] [--json PATH|-] ",
                    "[--deny-warnings] [--list-rules] [FILES...]\n",
                    "       ninja-lint --asm [--target-cpu LEVEL] ",
                    "[--asm-file PATH]... [--deny-warnings]"
                )
                .into());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.asm && (args.target_cpu.is_some() || !args.asm_files.is_empty()) {
        return Err("--target-cpu/--asm-file require --asm".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in ninja_lint::ALL_RULES {
            println!("{}  {:<28} {}", rule.id(), rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| ninja_lint::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("ninja-lint: no workspace root found; pass --root DIR");
            return ExitCode::from(2);
        }
    };

    let report = if args.asm {
        let opts = ninja_lint::AsmOptions {
            target_cpu: args.target_cpu.clone(),
            asm_files: args.asm_files.clone(),
        };
        match ninja_lint::asm_audit(&root, &opts) {
            Ok(audit) => {
                print!(
                    "{}",
                    ninja_lint::vecprofile::render_profiles(&audit.profiles)
                );
                audit.report.with_profiles(audit.profiles)
            }
            Err(e) => {
                eprintln!("ninja-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let result = if args.files.is_empty() {
            ninja_lint::analyze_workspace(&root)
        } else {
            ninja_lint::analyze_files(&args.files, &root)
        };
        match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ninja-lint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    print!("{}", report.render_text());
    if let Some(dest) = &args.json {
        let json = report.to_json();
        if dest == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(dest, json) {
            eprintln!("ninja-lint: cannot write {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    if args.deny_warnings && !report.clean {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
