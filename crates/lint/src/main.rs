//! The `ninja-lint` binary: taxonomy enforcement for CI and preflights.
//!
//! ```text
//! ninja-lint [--root DIR] [--json PATH] [--deny-warnings] [--list-rules] [FILES...]
//! ```
//!
//! With no `FILES`, lints the audited crates of the workspace found at
//! `--root` (default: walk up from the current directory). Findings are
//! printed one per line as `file:line: [ID name] message`; `--json`
//! additionally writes the machine-readable report (`-` for stdout).
//! With `--deny-warnings` any finding makes the exit status 1; I/O and
//! usage errors exit 2.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line.
struct Args {
    root: Option<PathBuf>,
    json: Option<String>,
    deny_warnings: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        deny_warnings: false,
        list_rules: false,
        files: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    argv.next().ok_or("--root needs a directory")?,
                ));
            }
            "--json" => {
                args.json = Some(argv.next().ok_or("--json needs a path (or -)")?);
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(concat!(
                    "usage: ninja-lint [--root DIR] [--json PATH|-] ",
                    "[--deny-warnings] [--list-rules] [FILES...]"
                )
                .into());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in ninja_lint::ALL_RULES {
            println!("{}  {:<28} {}", rule.id(), rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| ninja_lint::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("ninja-lint: no workspace root found; pass --root DIR");
            return ExitCode::from(2);
        }
    };

    let result = if args.files.is_empty() {
        ninja_lint::analyze_workspace(&root)
    } else {
        ninja_lint::analyze_files(&args.files, &root)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ninja-lint: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text());
    if let Some(dest) = &args.json {
        let json = report.to_json();
        if dest == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(dest, json) {
            eprintln!("ninja-lint: cannot write {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    if args.deny_warnings && !report.clean {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
