//! Assembly parsing and instruction classification for the `--asm`
//! vectorization oracle.
//!
//! The source-token rules (NL001–NL007) can only audit what the *author*
//! wrote; this module audits what the *compiler emitted*. It parses the
//! textual assembly of `rustc --emit asm` (x86-64 AT&T syntax or
//! AArch64), splits it into functions, and counts the instructions that
//! constitute vectorization evidence: packed FP arithmetic, integer
//! vector arithmetic, FMA, gather/scatter, and the widest vector
//! register touched by a *classified* instruction (so `vzeroupper` and
//! `vxorps` zeroing idioms never inflate the width).
//!
//! Like the rest of the crate this is a hand-rolled classifier — no
//! `object`, no `capstone`, no external disassembler — because the
//! workspace builds offline and the lint must stay a std-only leaf.
//!
//! Known limits (documented in DESIGN.md "Vectorization evidence"):
//! moves, shuffles and conversions are deliberately *not* counted as
//! arithmetic; a function fully inlined into its caller leaves no symbol
//! of its own, so evidence attribution (see [`crate::vecprofile`]) works
//! on the call graph of symbols that survive codegen.

use std::collections::BTreeSet;

/// Target architecture of an assembly listing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Arch {
    /// x86-64, AT&T syntax (`%xmm`/`%ymm`/`%zmm` registers).
    X86_64,
    /// AArch64 (`v0.4s`-style arrangement suffixes).
    AArch64,
}

/// Vectorization-relevant instruction counts of one function.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InsnCounts {
    /// Packed floating-point arithmetic instructions.
    pub vector_fp_ops: u32,
    /// Scalar floating-point arithmetic instructions.
    pub scalar_fp_ops: u32,
    /// Integer vector arithmetic/shuffle instructions.
    pub vector_int_ops: u32,
    /// Widest vector register (bits) on a *classified* instruction; zero
    /// when no vector arithmetic was seen.
    pub max_vector_bits: u32,
    /// Whether any fused multiply-add was emitted.
    pub fma: bool,
    /// Whether any gather load was emitted.
    pub gather: bool,
    /// Whether any scatter store was emitted.
    pub scatter: bool,
}

impl InsnCounts {
    /// Accumulates `other` into `self` (used for transitive call-graph
    /// attribution).
    pub fn merge(&mut self, other: &InsnCounts) {
        self.vector_fp_ops += other.vector_fp_ops;
        self.scalar_fp_ops += other.scalar_fp_ops;
        self.vector_int_ops += other.vector_int_ops;
        self.max_vector_bits = self.max_vector_bits.max(other.max_vector_bits);
        self.fma |= other.fma;
        self.gather |= other.gather;
        self.scatter |= other.scatter;
    }

    /// Whether any vector arithmetic (FP or integer) was seen.
    pub fn any_vector_ops(&self) -> bool {
        self.vector_fp_ops > 0 || self.vector_int_ops > 0
    }

    fn bump_width(&mut self, bits: u32) {
        self.max_vector_bits = self.max_vector_bits.max(bits);
    }
}

/// One function extracted from an assembly listing.
#[derive(Clone, Debug)]
pub struct AsmFunction {
    /// Raw (mangled) symbol name.
    pub symbol: String,
    /// Demangled path segments (hash segment dropped), e.g.
    /// `["ninja_kernels", "conv1d", "Conv1d", "run_ninja"]`.
    pub path: Vec<String>,
    /// 1-based line of the defining label in the listing.
    pub line: u32,
    /// Classified instruction counts of the body.
    pub counts: InsnCounts,
    /// Mangled symbols referenced by the body (call/lea targets), for
    /// transitive attribution.
    pub callees: Vec<String>,
}

/// A parsed assembly listing.
#[derive(Clone, Debug)]
pub struct AsmListing {
    /// Detected architecture.
    pub arch: Arch,
    /// Functions in listing order (label-delimited; data labels appear
    /// with zero instruction counts and are harmless).
    pub functions: Vec<AsmFunction>,
}

/// Detects the architecture of a listing: AT&T x86-64 registers carry a
/// `%` sigil that AArch64 assembly never uses.
pub fn detect_arch(text: &str) -> Arch {
    if text.contains('%') {
        Arch::X86_64
    } else {
        Arch::AArch64
    }
}

/// Parses one `--emit asm` listing into labeled functions with
/// classified instruction counts.
pub fn parse_listing(text: &str) -> AsmListing {
    let arch = detect_arch(text);
    let mut functions: Vec<AsmFunction> = Vec::new();
    let mut current: Option<AsmFunction> = None;
    let mut callees: BTreeSet<String> = BTreeSet::new();

    let mut flush = |cur: &mut Option<AsmFunction>, refs: &mut BTreeSet<String>| {
        if let Some(mut f) = cur.take() {
            f.callees = std::mem::take(refs).into_iter().collect();
            functions.push(f);
        }
        refs.clear();
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        if let Some(label) = global_label(raw) {
            flush(&mut current, &mut callees);
            current = Some(AsmFunction {
                symbol: label.to_string(),
                path: demangle(label),
                line: line_no,
                counts: InsnCounts::default(),
                callees: Vec::new(),
            });
            continue;
        }
        let trimmed = raw.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('.') || trimmed.starts_with('#') {
            continue; // directive, local label context, or comment
        }
        let Some(cur) = current.as_mut() else {
            continue;
        };
        let (mnemonic, operands) = split_insn(trimmed);
        match arch {
            Arch::X86_64 => classify_x86(mnemonic, operands, &mut cur.counts),
            Arch::AArch64 => classify_aarch64(mnemonic, operands, &mut cur.counts),
        }
        collect_symbol_refs(operands, &mut callees);
    }
    flush(&mut current, &mut callees);
    AsmListing { arch, functions }
}

/// A column-0 `name:` label whose name is not a local (`.L...`) label.
fn global_label(line: &str) -> Option<&str> {
    let name = line.strip_suffix(':')?;
    if name.is_empty()
        || name.starts_with('.')
        || name.starts_with(char::is_whitespace)
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '$' | '.' | '@'))
    {
        return None;
    }
    Some(name)
}

/// Splits an instruction line into mnemonic and operand text.
fn split_insn(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(at) => (&line[..at], line[at..].trim_start()),
        None => (line, ""),
    }
}

/// Collects mangled-symbol references (`_ZN...` legacy, `_R...` v0) from
/// an operand string.
fn collect_symbol_refs(operands: &str, out: &mut BTreeSet<String>) {
    for needle in ["_ZN", "_R"] {
        let mut rest = operands;
        while let Some(at) = rest.find(needle) {
            let tail = &rest[at..];
            let end = tail
                .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '$' | '.')))
                .unwrap_or(tail.len());
            // `_R` alone (e.g. a register name fragment) is not a symbol.
            if end > needle.len() + 2 {
                out.insert(tail[..end].to_string());
            }
            rest = &rest[at + needle.len()..];
        }
    }
}

// ---- x86-64 (AT&T) classification --------------------------------------

/// Bits of the widest vector register named in `operands` (zero when no
/// vector register appears).
fn x86_width(operands: &str) -> u32 {
    if operands.contains("%zmm") {
        512
    } else if operands.contains("%ymm") {
        256
    } else if operands.contains("%xmm") {
        128
    } else {
        0
    }
}

/// FP arithmetic bases shared by the packed (`ps`/`pd`) and scalar
/// (`ss`/`sd`) families.
fn is_fp_arith_base(base: &str) -> bool {
    matches!(
        base,
        "add"
            | "sub"
            | "mul"
            | "div"
            | "min"
            | "max"
            | "sqrt"
            | "rsqrt"
            | "rcp"
            | "rsqrt14"
            | "rcp14"
            | "hadd"
            | "hsub"
            | "addsub"
            | "dp"
            | "round"
            | "blendv"
    ) || base.starts_with("cmp")
}

/// Integer-vector arithmetic/shuffle prefixes (after the `p`); logical
/// ops (`pand`/`por`/`pxor`) and plain moves are excluded because they
/// appear in zeroing idioms and scalar spills.
const X86_INT_VECTOR_BASES: [&str; 17] = [
    "add", "sub", "mull", "mulh", "mulld", "muldq", "min", "max", "cmp", "sll", "srl", "sra",
    "shuf", "unpck", "blend", "abs", "avg",
];

fn classify_x86(mnemonic: &str, operands: &str, c: &mut InsnCounts) {
    let core = mnemonic.strip_prefix('v').unwrap_or(mnemonic);
    // Zeroing idioms and moves are not arithmetic evidence.
    if matches!(core, "xorps" | "xorpd" | "pxor" | "zeroupper" | "zeroall")
        || core.starts_with("mov")
    {
        return;
    }
    // Fused multiply-add family (vfmadd231ps, vfnmsub132sd, ...).
    if core.starts_with("fmadd")
        || core.starts_with("fmsub")
        || core.starts_with("fnmadd")
        || core.starts_with("fnmsub")
        || core.starts_with("fmaddsub")
        || core.starts_with("fmsubadd")
    {
        if core.ends_with("ps") || core.ends_with("pd") {
            c.vector_fp_ops += 1;
            c.fma = true;
            c.bump_width(x86_width(operands));
        } else if core.ends_with("ss") || core.ends_with("sd") {
            c.scalar_fp_ops += 1;
            c.fma = true;
        }
        return;
    }
    // Gather / scatter (vgatherdps, vpgatherdd, vscatterdpd, ...).
    if core.starts_with("gather") || core.starts_with("pgather") {
        c.gather = true;
        c.vector_int_ops += 1;
        c.bump_width(x86_width(operands));
        return;
    }
    if core.starts_with("scatter") || core.starts_with("pscatter") {
        c.scatter = true;
        c.vector_int_ops += 1;
        c.bump_width(x86_width(operands));
        return;
    }
    // Packed FP arithmetic.
    if let Some(base) = core.strip_suffix("ps").or_else(|| core.strip_suffix("pd")) {
        if is_fp_arith_base(base) {
            c.vector_fp_ops += 1;
            c.bump_width(x86_width(operands));
            return;
        }
    }
    // Scalar FP arithmetic.
    if let Some(base) = core.strip_suffix("ss").or_else(|| core.strip_suffix("sd")) {
        if is_fp_arith_base(base) {
            c.scalar_fp_ops += 1;
            return;
        }
    }
    // Integer vector arithmetic (requires a vector register so `push`
    // and friends never match).
    if let Some(rest) = core.strip_prefix('p') {
        let width = x86_width(operands);
        if width > 0 && X86_INT_VECTOR_BASES.iter().any(|b| rest.starts_with(b)) {
            c.vector_int_ops += 1;
            c.bump_width(width);
        }
    }
}

// ---- AArch64 classification --------------------------------------------

/// 128-bit NEON arrangement suffixes.
const A64_ARR_128: [&str; 4] = [".2d", ".4s", ".8h", ".16b"];
/// 64-bit NEON arrangement suffixes.
const A64_ARR_64: [&str; 4] = [".2s", ".4h", ".8b", ".1d"];

const A64_FP_MNEMONICS: [&str; 24] = [
    "fadd", "fsub", "fmul", "fdiv", "fsqrt", "fmin", "fmax", "fminnm", "fmaxnm", "fabs", "fneg",
    "fmla", "fmls", "fmadd", "fmsub", "fnmadd", "fnmsub", "fnmul", "frecpe", "frsqrte", "fcmeq",
    "fcmgt", "fcmge", "fabd",
];

const A64_INT_VECTOR_MNEMONICS: [&str; 21] = [
    "add", "sub", "mul", "mla", "mls", "smin", "smax", "umin", "umax", "smull", "umull", "cmeq",
    "cmgt", "cmge", "cmhi", "cmhs", "shl", "sshr", "ushr", "abs", "neg",
];

fn classify_aarch64(mnemonic: &str, operands: &str, c: &mut InsnCounts) {
    let bits = if A64_ARR_128.iter().any(|a| operands.contains(a)) {
        128
    } else if A64_ARR_64.iter().any(|a| operands.contains(a)) {
        64
    } else {
        0
    };
    if A64_FP_MNEMONICS.contains(&mnemonic) {
        if bits > 0 {
            c.vector_fp_ops += 1;
            c.bump_width(bits);
            if matches!(mnemonic, "fmla" | "fmls") {
                c.fma = true;
            }
        } else {
            c.scalar_fp_ops += 1;
            if matches!(mnemonic, "fmadd" | "fmsub" | "fnmadd" | "fnmsub") {
                c.fma = true;
            }
        }
        return;
    }
    if bits > 0 && A64_INT_VECTOR_MNEMONICS.contains(&mnemonic) {
        c.vector_int_ops += 1;
        c.bump_width(bits);
    }
}

// ---- demangling --------------------------------------------------------

/// Decodes a mangled symbol into path segments.
///
/// Handles the legacy `_ZN<len><seg>...17h<hash>E` scheme fully (with
/// `$LT$`/`$u7b$`-style escapes and `..` → `::`); for anything else it
/// falls back to extracting the length-prefixed identifier runs, which
/// is enough for rung matching under the v0 mangling too. A symbol with
/// no recognizable segments demangles to itself.
pub fn demangle(symbol: &str) -> Vec<String> {
    let body = symbol.strip_prefix("_ZN").unwrap_or(symbol);
    let bytes = body.as_bytes();
    let mut segs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let n: usize = body[start..i].parse().unwrap_or(0);
            if n > 0 && i + n <= bytes.len() {
                let first = bytes[i];
                if first == b'_' || first == b'$' || first.is_ascii_alphabetic() {
                    segs.push(decode_segment(&body[i..i + n]));
                    i += n;
                    continue;
                }
            }
        } else {
            i += 1;
        }
    }
    // The legacy scheme appends a `h<16 hex digits>` hash segment.
    if segs.last().is_some_and(|s| {
        s.len() == 17 && s.starts_with('h') && s[1..].bytes().all(|b| b.is_ascii_hexdigit())
    }) {
        segs.pop();
    }
    if segs.is_empty() {
        segs.push(symbol.to_string());
    }
    segs
}

/// Decodes one mangled path segment: `$LT$` → `<`, `$u7b$` → `{`,
/// `..` → `::`, etc.
fn decode_segment(seg: &str) -> String {
    // Legacy mangling prefixes an extra `_` when a segment starts with
    // an escape (`_$LT$...`); it is not part of the name.
    let seg = if seg.starts_with("_$") {
        &seg[1..]
    } else {
        seg
    };
    let bytes = seg.as_bytes();
    let mut out = String::with_capacity(seg.len());
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'$' {
            if let Some(end) = seg[i + 1..].find('$') {
                let code = &seg[i + 1..i + 1 + end];
                let decoded = match code {
                    "LT" => Some('<'),
                    "GT" => Some('>'),
                    "RF" => Some('&'),
                    "BP" => Some('*'),
                    "C" => Some(','),
                    "SP" => Some('@'),
                    _ => code
                        .strip_prefix('u')
                        .and_then(|hex| u32::from_str_radix(hex, 16).ok())
                        .and_then(char::from_u32),
                };
                if let Some(ch) = decoded {
                    out.push(ch);
                    i += end + 2;
                    continue;
                }
            }
        }
        if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
            out.push_str("::");
            i += 2;
            continue;
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demangles_legacy_symbols_and_drops_the_hash() {
        assert_eq!(
            demangle(
                "_ZN13ninja_kernels13black_scholes12BlackScholes9run_ninja17h0123456789abcdefE"
            ),
            [
                "ninja_kernels",
                "black_scholes",
                "BlackScholes",
                "run_ninja"
            ]
        );
    }

    #[test]
    fn demangles_escapes_and_closures() {
        let segs = demangle(
            "_ZN13ninja_kernels6conv1d6Conv1d8run_simd28_$u7b$$u7b$closure$u7d$$u7d$17h0011223344556677E"
        );
        assert!(segs.contains(&"run_simd".to_string()), "{segs:?}");
        assert!(segs.contains(&"{{closure}}".to_string()), "{segs:?}");
        let generic = demangle(
            "_ZN48_$LT$demo..Demo$u20$as$u20$framework..Kernel$GT$9run_naive17haaaaaaaaaaaaaaaaE",
        );
        assert!(generic[0].contains("demo::Demo"), "{generic:?}");
        assert_eq!(generic[1], "run_naive");
    }

    #[test]
    fn unmangleable_symbols_fall_back_to_themselves() {
        assert_eq!(demangle("memcpy"), ["memcpy"]);
        assert_eq!(demangle("rust_begin_unwind"), ["rust_begin_unwind"]);
    }

    #[test]
    fn x86_classifier_counts_packed_scalar_and_ignores_idioms() {
        let mut c = InsnCounts::default();
        classify_x86("vmulps", "%ymm1, %ymm2, %ymm0", &mut c);
        classify_x86("vaddpd", "%xmm1, %xmm2, %xmm0", &mut c);
        classify_x86("mulss", "%xmm1, %xmm0", &mut c);
        classify_x86("vfmadd231ps", "%ymm1, %ymm2, %ymm0", &mut c);
        classify_x86("vxorps", "%xmm0, %xmm0, %xmm0", &mut c); // zeroing
        classify_x86("vzeroupper", "", &mut c);
        classify_x86("vmovups", "(%rdi), %ymm0", &mut c); // move
        classify_x86("pushq", "%rbp", &mut c);
        assert_eq!(c.vector_fp_ops, 3);
        assert_eq!(c.scalar_fp_ops, 1);
        assert_eq!(c.max_vector_bits, 256);
        assert!(c.fma);
        assert!(!c.gather && !c.scatter);
    }

    #[test]
    fn x86_classifier_counts_integer_vectors_and_gathers() {
        let mut c = InsnCounts::default();
        classify_x86("vpaddd", "%xmm1, %xmm2, %xmm0", &mut c);
        classify_x86("vpcmpgtd", "%xmm1, %xmm2, %xmm0", &mut c);
        classify_x86("vpxor", "%xmm0, %xmm0, %xmm0", &mut c); // zeroing
        classify_x86("vgatherdps", "%ymm2, (%rdi,%ymm1,4), %ymm0", &mut c);
        assert_eq!(c.vector_int_ops, 3);
        assert!(c.gather);
        assert_eq!(c.max_vector_bits, 256);
    }

    #[test]
    fn aarch64_classifier_reads_arrangements() {
        let mut c = InsnCounts::default();
        classify_aarch64("fmul", "v0.4s, v1.4s, v2.4s", &mut c);
        classify_aarch64("fmla", "v0.4s, v1.4s, v2.4s", &mut c);
        classify_aarch64("fadd", "s0, s1, s2", &mut c); // scalar
        classify_aarch64("add", "v3.4s, v3.4s, v4.4s", &mut c);
        classify_aarch64("movi", "v0.4s, #0", &mut c); // zeroing
        assert_eq!(c.vector_fp_ops, 2);
        assert_eq!(c.scalar_fp_ops, 1);
        assert_eq!(c.vector_int_ops, 1);
        assert_eq!(c.max_vector_bits, 128);
        assert!(c.fma);
    }

    #[test]
    fn parse_listing_splits_functions_and_collects_callees() {
        let asm = "\t.text\n\
                   _ZN4demo3aaa17h0000000000000000E:\n\
                   \tvmulps\t%ymm1, %ymm2, %ymm0\n\
                   \tcallq\t_ZN4demo3bbb17h1111111111111111E\n\
                   \tretq\n\
                   .Lfunc_end0:\n\
                   _ZN4demo3bbb17h1111111111111111E:\n\
                   \tmulss\t%xmm1, %xmm0\n\
                   \tretq\n";
        let listing = parse_listing(asm);
        assert_eq!(listing.arch, Arch::X86_64);
        assert_eq!(listing.functions.len(), 2);
        let a = &listing.functions[0];
        assert_eq!(a.path, ["demo", "aaa"]);
        assert_eq!(a.counts.vector_fp_ops, 1);
        assert_eq!(a.counts.max_vector_bits, 256);
        assert_eq!(a.callees, ["_ZN4demo3bbb17h1111111111111111E"]);
        let b = &listing.functions[1];
        assert_eq!(b.counts.scalar_fp_ops, 1);
        assert_eq!(b.counts.max_vector_bits, 0);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = InsnCounts {
            vector_fp_ops: 2,
            max_vector_bits: 128,
            ..InsnCounts::default()
        };
        let b = InsnCounts {
            vector_fp_ops: 3,
            scalar_fp_ops: 1,
            max_vector_bits: 256,
            fma: true,
            ..InsnCounts::default()
        };
        a.merge(&b);
        assert_eq!(a.vector_fp_ops, 5);
        assert_eq!(a.scalar_fp_ops, 1);
        assert_eq!(a.max_vector_bits, 256);
        assert!(a.fma && a.any_vector_ops());
    }
}
