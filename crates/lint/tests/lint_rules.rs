//! Fixture-corpus integration tests: each deliberate violation fires its
//! rule exactly once, the clean fixture passes, the `ninja-lint` binary's
//! exit codes match, and the real tree is clean under `--deny-warnings`.

use ninja_lint::{analyze_files, analyze_workspace, LintReport, RuleId};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn lint_fixture(name: &str) -> LintReport {
    let dir = fixtures_dir();
    analyze_files(&[dir.join(name)], &dir).expect("fixture readable")
}

/// Asserts `rule` fires exactly once in `name` and nothing else fires.
fn assert_fires_exactly_once(name: &str, rule: RuleId) {
    let report = lint_fixture(name);
    let hits = report.by_rule(rule).count();
    assert_eq!(
        hits,
        1,
        "{name}: expected exactly one {} finding, got: {:#?}",
        rule.id(),
        report.findings
    );
    assert_eq!(
        report.findings.len(),
        1,
        "{name}: unexpected extra findings: {:#?}",
        report.findings
    );
    let f = &report.findings[0];
    assert_eq!(f.file, name);
    assert!(f.line > 0, "findings carry file:line");
    assert!(!f.message.is_empty());
}

#[test]
fn clean_fixture_passes() {
    let report = lint_fixture("clean.rs");
    assert!(report.clean, "{:#?}", report.findings);
}

#[test]
fn naive_uses_threads_fires_nl001_once() {
    assert_fires_exactly_once("naive_uses_threads.rs", RuleId::ThreadsInSerialRung);
}

#[test]
fn parallel_uses_simd_fires_nl002_once() {
    assert_fires_exactly_once("parallel_uses_simd.rs", RuleId::SimdInScalarRung);
}

#[test]
fn parallel_uses_isa_fires_nl002_once() {
    assert_fires_exactly_once("parallel_uses_isa.rs", RuleId::SimdInScalarRung);
}

#[test]
fn ninja_without_simd_fires_nl003_once() {
    assert_fires_exactly_once("ninja_without_simd.rs", RuleId::NinjaWithoutSimd);
}

#[test]
fn isa_generic_ninja_fixture_passes() {
    // A ninja rung written against the width-generic `Isa` trait — no
    // fixed-width vector type anywhere — satisfies NL003 and every
    // other rule.
    let report = lint_fixture("ninja_isa_generic.rs");
    assert!(report.clean, "{:#?}", report.findings);
}

#[test]
fn effort_drift_fires_nl004_once() {
    assert_fires_exactly_once("effort_drift.rs", RuleId::EffortLocDrift);
}

#[test]
fn missing_safety_fires_nl005_once() {
    assert_fires_exactly_once("missing_safety.rs", RuleId::MissingSafetyComment);
}

#[test]
fn relaxed_unjustified_fires_nl010_once() {
    assert_fires_exactly_once("relaxed_unjustified.rs", RuleId::UnjustifiedRelaxedOrdering);
}

#[test]
fn deque_relaxed_steal_fires_nl010_once() {
    assert_fires_exactly_once("deque_relaxed_steal.rs", RuleId::UnjustifiedRelaxedOrdering);
}

#[test]
fn the_real_tree_is_clean() {
    let report = analyze_workspace(&repo_root()).expect("workspace lints");
    assert!(
        report.clean,
        "the merged tree must pass its own lint:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 20);
}

fn run_binary(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ninja-lint"))
        .args(args)
        .output()
        .expect("ninja-lint binary runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_each_violation_fixture() {
    let dir = fixtures_dir();
    for name in [
        "naive_uses_threads.rs",
        "parallel_uses_simd.rs",
        "parallel_uses_isa.rs",
        "ninja_without_simd.rs",
        "effort_drift.rs",
        "missing_safety.rs",
        "relaxed_unjustified.rs",
        "deque_relaxed_steal.rs",
    ] {
        let (code, stdout, _) = run_binary(&[
            "--root",
            dir.to_str().unwrap(),
            "--deny-warnings",
            dir.join(name).to_str().unwrap(),
        ]);
        assert_eq!(code, 1, "{name} must fail --deny-warnings:\n{stdout}");
        assert!(stdout.contains(name), "findings name the file:\n{stdout}");
        // Without --deny-warnings the same findings are only warnings.
        let (code, _, _) = run_binary(&[
            "--root",
            dir.to_str().unwrap(),
            dir.join(name).to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{name} is advisory without --deny-warnings");
    }
}

#[test]
fn binary_is_clean_on_the_workspace_with_deny_warnings() {
    let root = repo_root();
    let (code, stdout, stderr) = run_binary(&["--root", root.to_str().unwrap(), "--deny-warnings"]);
    assert_eq!(code, 0, "workspace lint failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn binary_emits_json_findings_with_file_and_line() {
    let dir = fixtures_dir();
    let (code, stdout, _) = run_binary(&[
        "--root",
        dir.to_str().unwrap(),
        "--json",
        "-",
        dir.join("naive_uses_threads.rs").to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    for needle in [
        "\"rule\": \"NL001\"",
        "\"name\": \"threads-in-serial-rung\"",
        "\"file\": \"naive_uses_threads.rs\"",
        "\"line\":",
        "\"clean\": false",
    ] {
        assert!(
            needle.is_empty() || stdout.contains(needle),
            "missing {needle}:\n{stdout}"
        );
    }
}

#[test]
fn binary_usage_errors_exit_2() {
    let (code, _, stderr) = run_binary(&["--bogus-flag"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown flag"));
    let (code, _, stderr) = run_binary(&["--root", "/nonexistent-lint-root"]);
    assert_eq!(code, 2, "{stderr}");
}

#[test]
fn binary_lists_rules() {
    let (code, stdout, _) = run_binary(&["--list-rules"]);
    assert_eq!(code, 0);
    for id in [
        "NL001", "NL002", "NL003", "NL004", "NL005", "NL006", "NL007", "NL008", "NL009", "NL010",
    ] {
        assert!(stdout.contains(id), "{stdout}");
    }
}
