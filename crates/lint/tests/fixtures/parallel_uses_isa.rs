//! Fixture: deliberate NL002 violation — the "parallel" variant (which
//! the taxonomy defines as naive-plus-threads only) routes its chunk
//! bodies through the width-generic `Isa` dispatcher. That is hand-SIMD
//! with extra steps, not traditional programming. Everything else is
//! clean, so NL002 must fire exactly once.

use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::isa::{dispatch, Isa, IsaOp, SimdF32};
use ninja_simd::F32x4;

pub struct DotProd {
    xs: Vec<f32>,
    ys: Vec<f32>,
    n: usize,
}

/// One chunk of the dot-product, generic over the dispatched backend.
struct DotRange<'a> {
    xs: &'a [f32],
    ys: &'a [f32],
    out: &'a mut [f32],
}

impl IsaOp for DotRange<'_> {
    type Output = ();

    fn run<I: Isa>(self) {
        let lanes = <I::F32 as SimdF32>::LANES;
        for (k, slot) in self.out.iter_mut().enumerate() {
            let x = I::F32::load(&self.xs[k * lanes..]);
            let y = I::F32::load(&self.ys[k * lanes..]);
            *slot = (x * y).reduce_sum() + 1.0;
        }
    }
}

impl DotProd {
    /// Serial scalar reference.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        for i in 0..self.n {
            out[i] = self.xs[i] * self.ys[i] + 1.0;
        }
        out
    }

    /// "Naive plus threads" — except each chunk enters the dispatcher.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        par_chunks_mut(pool, &mut out, 64, |base, chunk| {
            dispatch(DotRange {
                xs: &self.xs[base * 64..],
                ys: &self.ys[base * 64..],
                out: chunk,
            });
        });
        out
    }

    /// Serial, restructured so the compiler can vectorize.
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        for (slot, (x, y)) in out.iter_mut().zip(self.xs.iter().zip(self.ys.iter())) {
            *slot = x.mul_add(*y, 1.0);
        }
        out
    }

    /// Restructured loop plus threads: the low-effort endpoint.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        par_chunks_mut(pool, &mut out, 64, |base, chunk| {
            let lo = base * 64;
            for (slot, (x, y)) in chunk
                .iter_mut()
                .zip(self.xs[lo..].iter().zip(self.ys[lo..].iter()))
            {
                *slot = x.mul_add(*y, 1.0);
            }
        });
        out
    }

    /// Hand 4-wide SIMD plus threads plus an unsafe pointer fast path.
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        par_chunks_mut(pool, &mut out, 64, |base, chunk| {
            for (k, quad) in chunk.chunks_mut(4).enumerate() {
                let i = base * 64 + k * 4;
                let x = F32x4::from_slice(&self.xs[i..]);
                let y = F32x4::from_slice(&self.ys[i..]);
                let v = x * y + F32x4::splat(1.0);
                // SAFETY: quads are padded to a multiple of 4 elements.
                unsafe { v.store_unchecked(quad.as_mut_ptr()) };
            }
        });
        out
    }
}

pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "dotprod",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "serial scalar loop",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 4,
                what_changed: "parallel_for over chunks",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 6,
                what_changed: "iterator form the compiler vectorizes",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 10,
                what_changed: "vectorizable form + threads",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 25,
                what_changed: "hand 4-wide SIMD, unchecked stores",
            },
        ],
    }
}
