//! Fixture: a ninja rung whose emitted assembly contains no vector
//! arithmetic — NL008 must fire exactly once when `check_asm` pairs this
//! file with `asm/scalar.s`.

/// Ninja-claimed entry point; the paired listing compiles it to purely
/// scalar FP code.
// ninja-lint: variant(ninja)
pub fn run_ninja(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = *v * 2.0 + 1.0;
    }
}
