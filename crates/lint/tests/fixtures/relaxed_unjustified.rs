//! Fixture: one `Ordering::Relaxed` site with no adjacent `// ORDERING:`
//! justification — NL010 must fire exactly once. The justified and
//! non-relaxed sites below must stay silent.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump_unjustified(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn bump_justified(counter: &AtomicU64) -> u64 {
    // ORDERING: monotonic stats counter; no control flow depends on it.
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn read_synchronized(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Acquire)
}
