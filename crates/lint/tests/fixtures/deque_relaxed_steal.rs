//! Fixture: a Chase–Lev-style steal path whose racy `bottom` read uses
//! `Ordering::Relaxed` with no adjacent `// ORDERING:` justification —
//! NL010 must fire exactly once. The justified sites below (the shape the
//! vendored deque actually ships) must stay silent.

use std::sync::atomic::{AtomicIsize, Ordering};

pub struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
}

impl Deque {
    pub fn steal_len_unjustified(&self) -> isize {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Relaxed);
        b - t
    }

    pub fn steal_len_justified(&self) -> isize {
        let t = self.top.load(Ordering::Acquire);
        // ORDERING: racy size estimate only; a stale `bottom` makes the
        // thief retry, never hand out a slot twice.
        let b = self.bottom.load(Ordering::Relaxed);
        b - t
    }

    pub fn claim(&self, t: isize) -> bool {
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed) // ORDERING: failure path only observes, never publishes.
            .is_ok()
    }
}
