//! Fixture: a naive rung the compiler auto-vectorized — NL009 (info)
//! must fire exactly once when `check_asm` pairs this file with
//! `asm/avx2.s`.

/// Naive rung; the paired AVX2 listing shows packed FP arithmetic.
// ninja-lint: variant(naive)
pub fn run_naive(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v += 1.0;
    }
}
