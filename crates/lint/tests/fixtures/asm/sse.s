	.text
	.globl	_ZN7ssekern8run_simd17h0123456789abcdefE
	.p2align	4, 0x90
_ZN7ssekern8run_simd17h0123456789abcdefE:
	.cfi_startproc
	movaps	(%rdi), %xmm0
	addps	%xmm1, %xmm0
	mulps	%xmm2, %xmm0
	minps	%xmm3, %xmm0
	sqrtps	%xmm0, %xmm0
	cmpltps	%xmm4, %xmm0
	paddd	%xmm5, %xmm6
	movaps	%xmm0, (%rdi)
	retq
	.cfi_endproc
