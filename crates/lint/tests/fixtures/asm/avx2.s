	.text
	.globl	_ZN20asm_naive_vectorized9run_naive17h0123456789abcdefE
	.p2align	4, 0x90
_ZN20asm_naive_vectorized9run_naive17h0123456789abcdefE:
	.cfi_startproc
	vmovups	(%rdi), %ymm0
	vaddps	%ymm1, %ymm0, %ymm0
	vmulps	%ymm2, %ymm0, %ymm0
	vfmadd231ps	%ymm3, %ymm2, %ymm0
	vmaxps	%ymm4, %ymm0, %ymm0
	vgatherdps	%ymm5, (%rdi,%ymm6,4), %ymm7
	vmovups	%ymm0, (%rdi)
	vzeroupper
	retq
	.cfi_endproc
