	.text
	.globl	_ZN8neonkern8run_simd17h0123456789abcdefE
	.p2align	2
_ZN8neonkern8run_simd17h0123456789abcdefE:
	.cfi_startproc
	ldr	q0, [x0]
	fadd	v0.4s, v0.4s, v1.4s
	fmul	v0.4s, v0.4s, v2.4s
	fmla	v0.4s, v1.4s, v3.4s
	fmax	v0.4s, v0.4s, v4.4s
	add	v5.4s, v5.4s, v6.4s
	fadd	s0, s0, s1
	str	q0, [x0]
	ret
	.cfi_endproc
