	.text
	.globl	_ZN16asm_ninja_scalar9run_ninja17h0123456789abcdefE
	.p2align	4, 0x90
_ZN16asm_ninja_scalar9run_ninja17h0123456789abcdefE:
	.cfi_startproc
	movss	(%rdi), %xmm0
	addss	%xmm1, %xmm0
	mulss	%xmm2, %xmm0
	subsd	%xmm3, %xmm0
	divss	%xmm2, %xmm0
	movss	%xmm0, (%rdi)
	retq
	.cfi_endproc
