//! Fixture: a ninja tier written once against the width-generic `Isa`
//! trait — no fixed-width vector type anywhere in the kernel — must pass
//! every rule. NL003 accepts the trait surface as hand-SIMD evidence:
//! the whole point of the dispatcher is that one kernel source measures
//! at 128- and 256-bit widths, and the lint must not punish that.

use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::isa::{dispatch, Isa, IsaOp, SimdF32};

pub struct DotProd {
    xs: Vec<f32>,
    ys: Vec<f32>,
    n: usize,
}

/// One chunk of the dot-product, generic over the dispatched backend.
struct DotRange<'a> {
    xs: &'a [f32],
    ys: &'a [f32],
    out: &'a mut [f32],
}

impl IsaOp for DotRange<'_> {
    type Output = ();

    fn run<I: Isa>(self) {
        dot_range::<I>(self.xs, self.ys, self.out);
    }
}

/// The width-generic body: lane count comes from the backend.
// ninja-lint: effort(ninja)
fn dot_range<I: Isa>(xs: &[f32], ys: &[f32], out: &mut [f32]) {
    let lanes = <I::F32 as SimdF32>::LANES;
    let one = I::F32::splat(1.0);
    for (k, slot) in out.iter_mut().enumerate() {
        let x = I::F32::load(&xs[k * lanes..]);
        let y = I::F32::load(&ys[k * lanes..]);
        *slot = x.mul_add(y, one).reduce_sum();
    }
}

impl DotProd {
    /// Serial scalar reference.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        for i in 0..self.n {
            out[i] = self.xs[i] * self.ys[i] + 1.0;
        }
        out
    }

    /// Naive plus a parallel_for annotation.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        par_chunks_mut(pool, &mut out, 64, |base, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let i = base * 64 + k;
                *slot = self.xs[i] * self.ys[i] + 1.0;
            }
        });
        out
    }

    /// Serial, restructured so the compiler can vectorize.
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        for (slot, (x, y)) in out.iter_mut().zip(self.xs.iter().zip(self.ys.iter())) {
            *slot = x.mul_add(*y, 1.0);
        }
        out
    }

    /// Restructured loop plus threads: the low-effort endpoint.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        par_chunks_mut(pool, &mut out, 64, |base, chunk| {
            let lo = base * 64;
            for (slot, (x, y)) in chunk
                .iter_mut()
                .zip(self.xs[lo..].iter().zip(self.ys[lo..].iter()))
            {
                *slot = x.mul_add(*y, 1.0);
            }
        });
        out
    }

    /// Hand-vectorized once; measured at whatever width the dispatcher
    /// resolves (or a `NINJA_ISA` override forces).
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        par_chunks_mut(pool, &mut out, 64, |base, chunk| {
            dispatch(DotRange {
                xs: &self.xs[base * 64..],
                ys: &self.ys[base * 64..],
                out: chunk,
            });
        });
        out
    }
}

pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "dotprod",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "serial scalar loop",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 4,
                what_changed: "parallel_for over chunks",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 6,
                what_changed: "iterator form the compiler vectorizes",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 10,
                what_changed: "vectorizable form + threads",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 25,
                what_changed: "width-generic Isa body, runtime dispatch",
            },
        ],
    }
}
