//! Golden-listing tests for the asm vectorization oracle.
//!
//! The classifier runs against checked-in listings (x86-64 AVX2, x86-64
//! SSE-only, AArch64 NEON, fully scalar) so its counting rules are pinned
//! without invoking a compiler; NL008/NL009 are then exercised through
//! `check_asm` against paired source fixtures, each firing exactly once.

use ninja_lint::{check_asm, parse_listing, Arch, AsmListing, RuleId, Severity, SourceFile};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn listing(name: &str) -> AsmListing {
    let text = std::fs::read_to_string(fixtures_dir().join("asm").join(name))
        .expect("asm fixture readable");
    parse_listing(&text)
}

fn source(name: &str) -> SourceFile {
    let text = std::fs::read_to_string(fixtures_dir().join(name)).expect("source fixture readable");
    SourceFile::from_source(name.to_string(), text)
}

#[test]
fn avx2_listing_classifies_wide_fp_fma_and_gather() {
    let l = listing("avx2.s");
    assert_eq!(l.arch, Arch::X86_64);
    assert_eq!(l.functions.len(), 1);
    let f = &l.functions[0];
    assert_eq!(
        f.path,
        vec!["asm_naive_vectorized".to_string(), "run_naive".to_string()]
    );
    assert_eq!(f.counts.vector_fp_ops, 4, "{:?}", f.counts);
    assert_eq!(f.counts.scalar_fp_ops, 0);
    assert_eq!(f.counts.vector_int_ops, 1, "the gather counts as one");
    assert_eq!(f.counts.max_vector_bits, 256);
    assert!(f.counts.fma);
    assert!(f.counts.gather);
    assert!(!f.counts.scatter);
}

#[test]
fn sse_listing_classifies_128bit_packed_fp() {
    let l = listing("sse.s");
    assert_eq!(l.arch, Arch::X86_64);
    let f = &l.functions[0];
    assert_eq!(f.path, vec!["ssekern".to_string(), "run_simd".to_string()]);
    assert_eq!(f.counts.vector_fp_ops, 5, "{:?}", f.counts);
    assert_eq!(f.counts.scalar_fp_ops, 0);
    assert_eq!(f.counts.vector_int_ops, 1, "paddd with an xmm operand");
    assert_eq!(f.counts.max_vector_bits, 128);
    assert!(!f.counts.fma);
}

#[test]
fn neon_listing_classifies_vectors_and_the_scalar_tail() {
    let l = listing("neon.s");
    assert_eq!(l.arch, Arch::AArch64);
    let f = &l.functions[0];
    assert_eq!(f.path, vec!["neonkern".to_string(), "run_simd".to_string()]);
    assert_eq!(f.counts.vector_fp_ops, 4, "{:?}", f.counts);
    assert_eq!(f.counts.scalar_fp_ops, 1, "the fadd s0 tail is scalar");
    assert_eq!(f.counts.vector_int_ops, 1);
    assert_eq!(f.counts.max_vector_bits, 128);
    assert!(f.counts.fma, "fmla is a fused multiply-add");
}

#[test]
fn scalar_listing_counts_only_scalar_fp() {
    let l = listing("scalar.s");
    let f = &l.functions[0];
    assert_eq!(
        f.path,
        vec!["asm_ninja_scalar".to_string(), "run_ninja".to_string()]
    );
    assert_eq!(f.counts.vector_fp_ops, 0, "{:?}", f.counts);
    assert_eq!(f.counts.scalar_fp_ops, 4);
    assert_eq!(f.counts.vector_int_ops, 0);
    assert_eq!(f.counts.max_vector_bits, 0);
    assert!(!f.counts.any_vector_ops());
}

#[test]
fn nl008_fires_exactly_once_on_a_scalar_ninja_rung() {
    let files = [source("asm_ninja_scalar.rs")];
    let (profiles, findings) = check_asm(&files, &[listing("scalar.s")]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(f.rule, RuleId::NinjaRungNotVectorized);
    assert_eq!(f.rule.severity(), Severity::Warning);
    assert_eq!(f.file, "asm_ninja_scalar.rs");
    assert!(f.line > 0);
    let p = profiles
        .iter()
        .find(|p| p.kernel == "asm_ninja_scalar" && p.rung == "ninja")
        .expect("profile recorded");
    assert_eq!(p.classification, "scalar");
    assert_eq!(p.matched_symbols, 1);
}

#[test]
fn nl009_fires_exactly_once_on_a_vectorized_naive_rung() {
    let files = [source("asm_naive_vectorized.rs")];
    let (profiles, findings) = check_asm(&files, &[listing("avx2.s")]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(f.rule, RuleId::ScalarRungAutovectorized);
    assert_eq!(f.rule.severity(), Severity::Info, "NL009 is advisory");
    assert_eq!(f.file, "asm_naive_vectorized.rs");
    let p = profiles
        .iter()
        .find(|p| p.kernel == "asm_naive_vectorized" && p.rung == "naive")
        .expect("profile recorded");
    assert_eq!(p.classification, "vec256");
    assert!(p.fma && p.gather);
}

#[test]
fn mismatched_listing_yields_no_evidence_and_no_findings() {
    // Pairing the ninja source with an unrelated listing must classify as
    // no-evidence (symbols inlined away / absent) and stay silent.
    let files = [source("asm_ninja_scalar.rs")];
    let (profiles, findings) = check_asm(&files, &[listing("sse.s")]);
    assert!(findings.is_empty(), "{findings:#?}");
    let p = &profiles[0];
    assert_eq!(p.matched_symbols, 0);
    assert_eq!(p.classification, "no-evidence");
}

/// Compiles the kernels crate and audits the real tree — slow, so opt-in:
/// `cargo test -p ninja-lint -- --ignored real_tree`.
#[test]
#[ignore = "drives cargo rustc --emit asm on crates/kernels"]
fn real_tree_asm_audit_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let audit =
        ninja_lint::asm_audit(&root, &ninja_lint::AsmOptions::default()).expect("audit runs");
    assert!(
        audit.report.clean,
        "real-tree asm audit must pass:\n{}",
        audit.report.render_text()
    );
    assert!(
        audit
            .profiles
            .iter()
            .any(|p| p.rung == "ninja" && p.width_bits >= 128),
        "at least one ninja rung shows vector evidence"
    );
}
