//! A2: AoS-vs-SoA layout ablation.
//!
//! The serial AoS (naive) and serial SoA (simd-tier) variants of the two
//! layout-showcase kernels, isolating the data-layout effect from threads
//! and explicit SIMD.

use criterion::{criterion_group, criterion_main, Criterion};
use ninja_kernels::conv1d::Conv1d;
use ninja_kernels::lbm::Lbm;
use ninja_kernels::ProblemSize;
use std::time::Duration;

fn bench_conv1d_layout(c: &mut Criterion) {
    let kernel = Conv1d::generate(ProblemSize::Test, 11);
    let mut group = c.benchmark_group("ablation_layout/conv1d");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("aos_serial", |b| {
        b.iter(|| std::hint::black_box(kernel.run_naive()));
    });
    group.bench_function("soa_serial", |b| {
        b.iter(|| std::hint::black_box(kernel.run_simd()));
    });
    group.finish();
}

fn bench_lbm_layout(c: &mut Criterion) {
    let kernel = Lbm::generate(ProblemSize::Test, 11);
    let mut group = c.benchmark_group("ablation_layout/lbm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("aos_serial", |b| {
        b.iter(|| std::hint::black_box(kernel.run_naive()));
    });
    group.bench_function("soa_serial", |b| {
        b.iter(|| std::hint::black_box(kernel.run_simd()));
    });
    group.finish();
}

criterion_group!(benches, bench_conv1d_layout, bench_lbm_layout);
criterion_main!(benches);
