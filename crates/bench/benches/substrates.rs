//! Microbenchmarks of the substrates themselves: SIMD math vs scalar libm,
//! the bitonic merge network vs scalar merge, and pool scheduling overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use ninja_kernels::merge_sort::{merge_scalar, merge_simd};
use ninja_parallel::ThreadPool;
use ninja_simd::math::{exp_v4, norm_cdf_v4};
use ninja_simd::F32x4;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn setup_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group
}

fn bench_vector_math(c: &mut Criterion) {
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01) - 20.0).collect();
    let mut group = setup_group(c, "substrates/exp");
    group.bench_function("scalar_libm", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in &xs {
                acc += x.exp();
            }
            std::hint::black_box(acc)
        });
    });
    group.bench_function("simd_exp_v4", |b| {
        b.iter(|| {
            let mut acc = F32x4::zero();
            for chunk in xs.chunks_exact(4) {
                acc += exp_v4(F32x4::from_slice(chunk));
            }
            std::hint::black_box(acc.reduce_sum())
        });
    });
    group.bench_function("simd_norm_cdf_v4", |b| {
        b.iter(|| {
            let mut acc = F32x4::zero();
            for chunk in xs.chunks_exact(4) {
                acc += norm_cdf_v4(F32x4::from_slice(chunk));
            }
            std::hint::black_box(acc.reduce_sum())
        });
    });
    group.finish();
}

fn bench_merge_network(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut a: Vec<f32> = (0..8192).map(|_| rng.gen_range(-1e3..1e3)).collect();
    let mut b2: Vec<f32> = (0..8192).map(|_| rng.gen_range(-1e3..1e3)).collect();
    a.sort_by(|x, y| x.partial_cmp(y).unwrap());
    b2.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let mut out = vec![0.0f32; a.len() + b2.len()];
    let mut group = setup_group(c, "substrates/merge");
    group.bench_function("scalar", |bch| {
        bch.iter(|| {
            merge_scalar(&a, &b2, &mut out);
            std::hint::black_box(out[0])
        });
    });
    group.bench_function("bitonic_simd", |bch| {
        bch.iter(|| {
            merge_simd(&a, &b2, &mut out);
            std::hint::black_box(out[0])
        });
    });
    group.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    let pool = ThreadPool::new();
    let mut group = setup_group(c, "substrates/pool");
    group.bench_function("parallel_for_empty_region", |b| {
        b.iter(|| {
            pool.parallel_for(0..64, 16, |r| {
                std::hint::black_box(r.len());
            });
        });
    });
    group.bench_function("parallel_reduce_sum_64k", |b| {
        b.iter(|| {
            let s = pool.parallel_reduce(
                0..65_536,
                4096,
                0u64,
                // black_box keeps LLVM from folding the range sum into a
                // closed form, so the bench measures real chunk traversal.
                |r| r.map(|i| std::hint::black_box(i) as u64).sum(),
                |x, y| x + y,
            );
            std::hint::black_box(s)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vector_math,
    bench_merge_network,
    bench_pool_overhead
);
criterion_main!(benches);
