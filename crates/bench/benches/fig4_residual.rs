//! Criterion bench behind F4: the residual gap — every kernel's
//! low-effort `algorithmic` variant vs its `ninja` variant.

use criterion::{criterion_group, criterion_main, Criterion};
use ninja_kernels::{registry, ProblemSize, Variant};
use ninja_parallel::ThreadPool;
use std::time::Duration;

fn bench_residual(c: &mut Criterion) {
    let pool = ThreadPool::new();
    let mut group = c.benchmark_group("fig4_residual");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for spec in registry() {
        let mut instance = (spec.make)(ProblemSize::Test, 42);
        for v in [Variant::Algorithmic, Variant::Ninja] {
            group.bench_function(format!("{}/{}", spec.name, v.name()), |b| {
                b.iter(|| std::hint::black_box(instance.run(v, &pool)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_residual);
criterion_main!(benches);
