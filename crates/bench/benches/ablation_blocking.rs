//! A1: cache-blocking / base-case-size ablation.
//!
//! Sweeps the insertion-sort base case of the bottom-up merge sort (the
//! "blocking" knob DESIGN.md calls out) and the parallel-for grain size of
//! the N-body kernel, showing that the low-effort tiers are not sensitive
//! to heroic tuning.

use criterion::{criterion_group, criterion_main, Criterion};
use ninja_kernels::merge_sort::{bottom_up_sort_with_cutoff, merge_scalar, MergeSort};
use ninja_kernels::nbody::NBody;
use ninja_kernels::ProblemSize;
use ninja_parallel::ThreadPool;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_sort_cutoff(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let data: Vec<f32> = (0..1 << 15).map(|_| rng.gen_range(-1e6..1e6)).collect();
    let mut group = c.benchmark_group("ablation_blocking/sort_base_cutoff");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for cutoff in [4usize, 16, 64, 256] {
        group.bench_function(format!("cutoff_{cutoff}"), |b| {
            b.iter(|| {
                let mut buf = data.clone();
                let mut tmp = vec![0.0f32; buf.len()];
                bottom_up_sort_with_cutoff(&mut buf, &mut tmp, merge_scalar, cutoff);
                std::hint::black_box(buf[0])
            });
        });
    }
    group.finish();
}

fn bench_nbody_grain(c: &mut Criterion) {
    let kernel = NBody::generate(ProblemSize::Test, 7);
    let mut group = c.benchmark_group("ablation_blocking/nbody_grain");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::with_threads(threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| std::hint::black_box(kernel.run_ninja(&pool)));
        });
    }
    group.finish();
}

fn bench_mergesort_variants(c: &mut Criterion) {
    let kernel = MergeSort::generate(ProblemSize::Test, 7);
    let pool = ThreadPool::new();
    let mut group = c.benchmark_group("ablation_blocking/mergesort_tiers");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("naive_allocating", |b| {
        b.iter(|| std::hint::black_box(kernel.run_naive()));
    });
    group.bench_function("blocked_pingpong", |b| {
        b.iter(|| std::hint::black_box(kernel.run_simd()));
    });
    group.bench_function("ninja_simd_merge", |b| {
        b.iter(|| std::hint::black_box(kernel.run_ninja(&pool)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sort_cutoff,
    bench_nbody_grain,
    bench_mergesort_variants
);
criterion_main!(benches);
