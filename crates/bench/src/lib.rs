//! Shared plumbing for the `fig*`/`table*` reproduction binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --size test|quick|paper   problem-size preset (default: quick)
//! --threads N               measurement pool threads (default: hardware)
//! --affinity                round-robin-pin pool workers to cores (best
//!                           effort; no-op where `sched_setaffinity` is
//!                           unavailable or denied)
//! --reps N                  timed repetitions per variant (default: 3)
//! --timeout SECONDS         per-variant wall-clock budget; 0 disables
//!                           (default: 120)
//! --fail-fast               stop the suite at the first failed variant
//! --keep-going              run every kernel even after failures (default)
//! --chaos panic|hang|nan|wrong
//!                           inject one fault-injection kernel (testing the
//!                           harness itself; forces a nonzero exit code)
//! --chaos-seed N            seed of the deterministic probabilistic fault
//!                           schedule; opts the chaos kernel into scheduled
//!                           mode (shared bit-for-bit with ninja-serve)
//! --chaos-rate F            per-attempt fault probability of the schedule,
//!                           in [0, 1] (default 0.1 when only the seed is
//!                           given; the seed defaults to 2012)
//! --lint                    run the ninja-lint taxonomy audit as a
//!                           preflight and refuse to measure on findings
//! --asm                     compile the kernels to assembly and run the
//!                           ninja-asm vectorization oracle as a preflight;
//!                           refuses to measure when a Simd/Ninja rung has
//!                           no vector evidence, and embeds the per-rung
//!                           VecProfile table into suite_report.json
//! --record                  append this run to the persistent perf store
//!                           and regenerate BENCH_history.json
//! --baseline REF            compare against a baseline (a store ref like
//!                           `latest`/`latest~N`/an id, or a file path) and
//!                           exit nonzero on a confirmed regression
//! --store DIR               perf-store directory (default: perfdb)
//! --noise-floor F           relative floor for the regression gate
//!                           (default: the CI-host gate preset, 0.25)
//! --trace PATH              record harness/pool spans and write a Chrome
//!                           trace_event JSON (load in Perfetto / about:tracing)
//! --probe-metrics           collect thread-pool utilization + raw per-rep
//!                           samples and attribute cells against the
//!                           calibrated host machine
//! --counters                open hardware performance counters
//!                           (perf_event_open) around every measured rep
//!                           and pool job: per-cell IPC / LLC miss rate /
//!                           estimated DRAM GB/s cross-checked against the
//!                           modeled roofline bound, plus per-worker
//!                           local-vs-steal cache windows; degrades to a
//!                           printed reason where the PMU is unavailable
//! --scale                   run a thread/size scaling sweep instead of the
//!                           single-point suite: speedup curves per rung,
//!                           Amdahl/USL fits, sweep_report.json/.csv
//! --threads-max N           largest thread count in the --scale grid
//!                           (default: hardware threads)
//! --sizes a,b,c             comma-separated problem sizes for the --scale
//!                           grid (default: the --size preset)
//! --kernels a,b,c           restrict the --scale sweep to these kernels
//! --serve                   run the ninja-serve SLO load sweep instead of
//!                           the suite: open-loop load at each offered rate,
//!                           p50/p99 + shed/expired/degraded per point,
//!                           serve_report.json (`--kernels` picks the served
//!                           kernel; `--chaos-seed`/`--chaos-rate` inject
//!                           faults at the serving layer)
//! --serve-rates a,b,c       offered request rates (req/s) for the --serve
//!                           sweep (default: 500,2000,8000)
//! --serve-duration-ms N     wall-clock length of each --serve rate point
//!                           (default: 1000)
//! --quick                   shorthand for --size quick
//! ```
//!
//! Run `cargo run --release -p ninja-bench --bin reproduce` to regenerate
//! every table and figure in one go.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use ninja_kernels::chaos::FailureMode;
use ninja_kernels::ProblemSize;

/// Parsed command-line options shared by the reproduction binaries.
#[derive(Clone, Debug, PartialEq)]
pub struct Cli {
    /// Problem-size preset.
    pub size: ProblemSize,
    /// Pool threads for parallel variants.
    pub threads: usize,
    /// Round-robin-pin pool workers to cores (best effort).
    pub affinity: bool,
    /// Timed repetitions per variant.
    pub reps: u32,
    /// Per-variant wall-clock budget in seconds; `0` disables the watchdog.
    pub timeout_s: u64,
    /// Stop the suite at the first failed variant instead of keeping going.
    pub fail_fast: bool,
    /// Optional chaos kernel to append to the suite (harness self-test).
    pub chaos: Option<FailureMode>,
    /// Run the `ninja-lint` taxonomy audit before measuring; findings
    /// abort the run so mislabeled variants cannot produce numbers.
    pub lint: bool,
    /// Compile the kernels to assembly and run the vectorization oracle
    /// before measuring; a Simd/Ninja rung with no vector evidence aborts
    /// the run, and the per-rung profiles ride along in the suite report.
    pub asm: bool,
    /// Append the run to the persistent perf store and regenerate the
    /// `BENCH_history.json` trajectory artifact.
    pub record: bool,
    /// Baseline to compare against (`latest`, `latest~N`, a record id, or
    /// a file path); a confirmed regression makes the exit nonzero.
    pub baseline: Option<String>,
    /// Perf-store directory (shared by `--record`/`--baseline` and the
    /// `perfdb` binary).
    pub store: String,
    /// Relative noise floor for the `--baseline` regression gate;
    /// `None` uses the shared-CI-host gate preset.
    pub noise_floor: Option<f64>,
    /// Output path for a Chrome `trace_event` JSON of the run's spans
    /// (`None` leaves tracing off).
    pub trace: Option<String>,
    /// Collect thread-pool utilization metrics and raw per-repetition
    /// samples, and attribute cells against the calibrated host.
    pub probe_metrics: bool,
    /// Open hardware performance counters around every measured rep and
    /// pool job; measured IPC / LLC miss rate / DRAM GB/s cross-check the
    /// modeled roofline bound. Degrades to an explained no-op where
    /// `perf_event_open` is unavailable.
    pub counters: bool,
    /// Run a thread/size scaling sweep (speedup curves + Amdahl/USL fits)
    /// instead of the single-point suite.
    pub scale: bool,
    /// Largest thread count in the `--scale` grid; `None` uses the
    /// hardware thread count.
    pub threads_max: Option<usize>,
    /// Problem sizes for the `--scale` grid; `None` sweeps only the
    /// `--size` preset.
    pub sizes: Option<Vec<ProblemSize>>,
    /// Kernel names the `--scale` sweep is restricted to; `None` sweeps
    /// the whole registry. For `--serve` the first name picks the served
    /// kernel.
    pub kernels: Option<Vec<String>>,
    /// Run the `ninja-serve` SLO load sweep instead of the suite.
    pub serve: bool,
    /// Offered request rates (requests/second) of the `--serve` sweep.
    pub serve_rates: Vec<f64>,
    /// Wall-clock length of each `--serve` rate point, milliseconds.
    pub serve_duration_ms: u64,
    /// Seed of the deterministic probabilistic fault schedule; either
    /// `--chaos-seed` or `--chaos-rate` opts scheduled chaos in.
    pub chaos_seed: Option<u64>,
    /// Per-attempt fault probability of the schedule, in `[0, 1]`.
    pub chaos_rate: Option<f64>,
}

impl Cli {
    /// The watchdog budget as a `Duration`, or `None` when disabled.
    pub fn timeout(&self) -> Option<std::time::Duration> {
        (self.timeout_s > 0).then(|| std::time::Duration::from_secs(self.timeout_s))
    }

    /// Builds the `--scale` sweep grid from the parsed flags:
    /// `--sizes` (defaulting to the single `--size` preset) crossed with
    /// `thread_grid(--threads-max)`, carrying over reps/timeout and the
    /// optional `--kernels` filter.
    pub fn sweep_config(&self) -> ninja_core::SweepConfig {
        ninja_core::SweepConfig {
            sizes: self.sizes.clone().unwrap_or_else(|| vec![self.size]),
            threads: ninja_core::thread_grid(
                self.threads_max
                    .unwrap_or_else(ninja_parallel::hardware_threads),
            ),
            reps: self.reps,
            timeout: self.timeout(),
            kernels: self.kernels.clone(),
            ..Default::default()
        }
    }

    /// The seeded chaos schedule implied by `--chaos-seed`/`--chaos-rate`.
    /// Either flag opts in; the one left out takes its default (seed
    /// 2012, rate 0.1). The same `(seed, rate)` pair produces the same
    /// fault sequence here and inside `ninja-serve`, bit for bit.
    pub fn chaos_schedule(&self) -> Option<ninja_kernels::chaos::ChaosSchedule> {
        (self.chaos_seed.is_some() || self.chaos_rate.is_some()).then(|| {
            ninja_kernels::chaos::ChaosSchedule::new(
                self.chaos_seed.unwrap_or(2012),
                self.chaos_rate.unwrap_or(0.1),
            )
        })
    }
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            size: ProblemSize::Quick,
            threads: ninja_parallel::hardware_threads(),
            affinity: false,
            reps: 3,
            timeout_s: 120,
            fail_fast: false,
            chaos: None,
            lint: false,
            asm: false,
            record: false,
            baseline: None,
            store: ninja_perfdb::DEFAULT_DIR.to_owned(),
            noise_floor: None,
            trace: None,
            probe_metrics: false,
            counters: false,
            scale: false,
            threads_max: None,
            sizes: None,
            kernels: None,
            serve: false,
            serve_rates: vec![500.0, 2_000.0, 8_000.0],
            serve_duration_ms: 1_000,
            chaos_seed: None,
            chaos_rate: None,
        }
    }
}

/// Parses an argument iterator (without the program name).
///
/// Unknown flags are rejected with an error message so typos don't
/// silently measure the wrong configuration.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed values.
pub fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Cli, String> {
    let mut cli = Cli::default();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--size" => {
                let v = value("--size")?;
                cli.size = match v.as_str() {
                    "test" => ProblemSize::Test,
                    "quick" => ProblemSize::Quick,
                    "paper" => ProblemSize::Paper,
                    other => return Err(format!("unknown size '{other}' (test|quick|paper)")),
                };
            }
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if cli.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--reps" => {
                cli.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if cli.reps == 0 {
                    return Err("--reps must be positive".into());
                }
            }
            "--timeout" => {
                cli.timeout_s = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
            }
            "--quick" => cli.size = ProblemSize::Quick,
            "--affinity" => cli.affinity = true,
            "--scale" => cli.scale = true,
            "--threads-max" => {
                let max: usize = value("--threads-max")?
                    .parse()
                    .map_err(|e| format!("--threads-max: {e}"))?;
                if max == 0 {
                    return Err("--threads-max must be positive".into());
                }
                cli.threads_max = Some(max);
            }
            "--sizes" => {
                let list = value("--sizes")?;
                let mut sizes = Vec::new();
                for name in list.split(',').filter(|s| !s.is_empty()) {
                    sizes.push(ProblemSize::from_name(name).ok_or_else(|| {
                        format!("unknown size '{name}' in --sizes (test|quick|paper)")
                    })?);
                }
                if sizes.is_empty() {
                    return Err("--sizes needs at least one size".into());
                }
                cli.sizes = Some(sizes);
            }
            "--kernels" => {
                let list = value("--kernels")?;
                let kernels: Vec<String> = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if kernels.is_empty() {
                    return Err("--kernels needs at least one kernel name".into());
                }
                cli.kernels = Some(kernels);
            }
            "--fail-fast" => cli.fail_fast = true,
            "--keep-going" => cli.fail_fast = false,
            "--trace" => cli.trace = Some(value("--trace")?),
            "--probe-metrics" => cli.probe_metrics = true,
            "--counters" => cli.counters = true,
            "--lint" => cli.lint = true,
            "--asm" => cli.asm = true,
            "--record" => cli.record = true,
            "--baseline" => cli.baseline = Some(value("--baseline")?),
            "--store" => cli.store = value("--store")?,
            "--noise-floor" => {
                let floor: f64 = value("--noise-floor")?
                    .parse()
                    .map_err(|e| format!("--noise-floor: {e}"))?;
                if !(floor >= 0.0 && floor.is_finite()) {
                    return Err("--noise-floor must be a finite non-negative number".into());
                }
                cli.noise_floor = Some(floor);
            }
            "--chaos" => {
                let v = value("--chaos")?;
                cli.chaos =
                    Some(FailureMode::from_name(&v).ok_or_else(|| {
                        format!("unknown chaos mode '{v}' (panic|hang|nan|wrong)")
                    })?);
            }
            "--chaos-seed" => {
                cli.chaos_seed = Some(
                    value("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                );
            }
            "--chaos-rate" => {
                let rate: f64 = value("--chaos-rate")?
                    .parse()
                    .map_err(|e| format!("--chaos-rate: {e}"))?;
                if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                    return Err("--chaos-rate must be in [0, 1]".into());
                }
                cli.chaos_rate = Some(rate);
            }
            "--serve" => cli.serve = true,
            "--serve-rates" => {
                let list = value("--serve-rates")?;
                let mut rates = Vec::new();
                for part in list.split(',').filter(|s| !s.is_empty()) {
                    let rate: f64 = part
                        .parse()
                        .map_err(|e| format!("--serve-rates '{part}': {e}"))?;
                    if !(rate.is_finite() && rate > 0.0) {
                        return Err(format!(
                            "--serve-rates '{part}': rates must be positive and finite"
                        ));
                    }
                    rates.push(rate);
                }
                if rates.is_empty() {
                    return Err("--serve-rates needs at least one rate".into());
                }
                cli.serve_rates = rates;
            }
            "--serve-duration-ms" => {
                cli.serve_duration_ms = value("--serve-duration-ms")?
                    .parse()
                    .map_err(|e| format!("--serve-duration-ms: {e}"))?;
                if cli.serve_duration_ms == 0 {
                    return Err("--serve-duration-ms must be positive".into());
                }
            }
            "--help" | "-h" => {
                return Err(concat!(
                    "usage: [--size test|quick|paper] [--threads N] [--affinity]\n",
                    "       [--reps N] [--timeout SECONDS] [--fail-fast|--keep-going]\n",
                    "       [--chaos panic|hang|nan|wrong] [--chaos-seed N]\n",
                    "       [--chaos-rate F] [--lint] [--asm]\n",
                    "       [--record] [--baseline REF|PATH] [--store DIR]\n",
                    "       [--noise-floor F] [--trace PATH] [--probe-metrics]\n",
                    "       [--counters]\n",
                    "       [--scale] [--threads-max N] [--sizes a,b,c]\n",
                    "       [--kernels a,b,c] [--serve] [--serve-rates a,b,c]\n",
                    "       [--serve-duration-ms N] [--quick]"
                )
                .into())
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if cli.serve && cli.scale {
        return Err("--serve and --scale are mutually exclusive".into());
    }
    Ok(cli)
}

/// Runs the `ninja-lint` workspace audit as a measurement preflight.
///
/// Returns the number of files scanned when the tree is clean.
///
/// # Errors
///
/// Returns the rendered findings when the audit fails, or the underlying
/// I/O message when the workspace sources cannot be read.
pub fn lint_preflight() -> Result<u64, String> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root");
    let report = ninja_lint::analyze_workspace(root).map_err(|e| e.to_string())?;
    if report.clean {
        Ok(report.files_scanned)
    } else {
        Err(report.render_text())
    }
}

/// Runs the ninja-asm vectorization oracle as a measurement preflight.
///
/// Compiles `crates/kernels` to assembly (toolchain-default target-cpu),
/// classifies every rung's emitted instructions, and returns the per-rung
/// profiles converted to the suite-report record form so callers can embed
/// them into `suite_report.json` / the perf store.
///
/// # Errors
///
/// Returns the rendered findings when a Simd/Ninja rung has no vector
/// evidence (NL008) or a `Relaxed` ordering lacks justification (NL010),
/// or the underlying compiler/I/O message when `cargo rustc` fails.
pub fn asm_preflight() -> Result<Vec<ninja_core::VecProfileRecord>, String> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root");
    let audit = ninja_lint::asm_audit(root, &ninja_lint::AsmOptions::default())
        .map_err(|e| e.to_string())?;
    if !audit.report.clean {
        return Err(audit.report.render_text());
    }
    // The oracle names kernels by source-file stem (`black_scholes`);
    // measured cells use the registry name (`blackscholes`). Map the stem
    // onto the registry name so `perfdb compare`/`trend` lookups line up.
    let registry: Vec<&'static str> = ninja_kernels::registry()
        .into_iter()
        .map(|spec| spec.name)
        .collect();
    Ok(audit
        .profiles
        .into_iter()
        .map(|p| ninja_core::VecProfileRecord {
            kernel: registry
                .iter()
                .find(|name| p.kernel.replace('_', "") == **name)
                .map_or(p.kernel, |name| (*name).to_owned()),
            rung: p.rung,
            width_bits: p.width_bits,
            vector_fp_ops: p.vector_fp_ops,
            scalar_fp_ops: p.scalar_fp_ops,
            vector_int_ops: p.vector_int_ops,
            matched_symbols: p.matched_symbols,
            fma: p.fma,
            gather: p.gather,
            scatter: p.scatter,
            classification: p.classification,
        })
        .collect())
}

/// Parses `std::env::args()` and exits with a message on error.
pub fn cli_from_env() -> Cli {
    match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Cli, String> {
        parse_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_flags() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.size, ProblemSize::Quick);
        assert_eq!(cli.reps, 3);
        assert!(cli.threads >= 1);
    }

    #[test]
    fn parses_all_flags() {
        let cli = parse(&[
            "--size",
            "paper",
            "--threads",
            "4",
            "--reps",
            "7",
            "--timeout",
            "30",
            "--fail-fast",
            "--chaos",
            "hang",
            "--lint",
            "--record",
            "--baseline",
            "latest~2",
            "--store",
            "/tmp/perfstore",
            "--noise-floor",
            "0.1",
        ])
        .unwrap();
        assert_eq!(cli.size, ProblemSize::Paper);
        assert_eq!(cli.threads, 4);
        assert_eq!(cli.reps, 7);
        assert_eq!(cli.timeout_s, 30);
        assert_eq!(cli.timeout(), Some(std::time::Duration::from_secs(30)));
        assert!(cli.fail_fast);
        assert_eq!(cli.chaos, Some(FailureMode::Hang));
        assert!(cli.lint);
        assert!(cli.record);
        assert_eq!(cli.baseline.as_deref(), Some("latest~2"));
        assert_eq!(cli.store, "/tmp/perfstore");
        assert_eq!(cli.noise_floor, Some(0.1));
    }

    #[test]
    fn perf_store_flags_default_off() {
        let cli = parse(&[]).unwrap();
        assert!(!cli.record);
        assert_eq!(cli.baseline, None);
        assert_eq!(cli.store, ninja_perfdb::DEFAULT_DIR);
        assert_eq!(cli.noise_floor, None);
    }

    #[test]
    fn affinity_defaults_off_and_parses() {
        assert!(!parse(&[]).unwrap().affinity);
        let cli = parse(&["--affinity", "--threads", "2"]).unwrap();
        assert!(cli.affinity);
        assert_eq!(cli.threads, 2);
    }

    #[test]
    fn probe_flags_default_off_and_parse() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.trace, None);
        assert!(!cli.probe_metrics);
        let cli = parse(&["--quick", "--trace", "out.json", "--probe-metrics"]).unwrap();
        assert_eq!(cli.size, ProblemSize::Quick);
        assert_eq!(cli.trace.as_deref(), Some("out.json"));
        assert!(cli.probe_metrics);
        assert!(parse(&["--trace"]).is_err(), "--trace needs a path");
    }

    #[test]
    fn counters_flag_defaults_off_and_parses() {
        assert!(!parse(&[]).unwrap().counters);
        let cli = parse(&["--counters", "--probe-metrics"]).unwrap();
        assert!(cli.counters);
        assert!(cli.probe_metrics);
    }

    #[test]
    fn scale_flags_default_off_and_parse() {
        let cli = parse(&[]).unwrap();
        assert!(!cli.scale);
        assert_eq!(cli.threads_max, None);
        assert_eq!(cli.sizes, None);
        assert_eq!(cli.kernels, None);
        let cli = parse(&[
            "--scale",
            "--threads-max",
            "4",
            "--sizes",
            "test,quick",
            "--kernels",
            "blackscholes,nbody",
        ])
        .unwrap();
        assert!(cli.scale);
        assert_eq!(cli.threads_max, Some(4));
        assert_eq!(cli.sizes, Some(vec![ProblemSize::Test, ProblemSize::Quick]));
        assert_eq!(
            cli.kernels.as_deref(),
            Some(&["blackscholes".to_owned(), "nbody".to_owned()][..])
        );
    }

    #[test]
    fn sweep_config_reflects_the_flags() {
        let cli = parse(&[
            "--scale",
            "--threads-max",
            "4",
            "--sizes",
            "test",
            "--reps",
            "2",
            "--timeout",
            "0",
        ])
        .unwrap();
        let config = cli.sweep_config();
        assert_eq!(config.sizes, vec![ProblemSize::Test]);
        assert_eq!(config.threads, vec![1, 2, 3, 4]);
        assert_eq!(config.reps, 2);
        assert_eq!(config.timeout, None);
        assert_eq!(config.kernels, None);
        // Without --sizes the sweep uses the --size preset.
        let config = parse(&["--scale", "--size", "paper"])
            .unwrap()
            .sweep_config();
        assert_eq!(config.sizes, vec![ProblemSize::Paper]);
    }

    #[test]
    fn scale_flags_reject_garbage() {
        assert!(parse(&["--threads-max", "0"]).is_err());
        assert!(parse(&["--sizes", "huge"]).is_err());
        assert!(parse(&["--sizes", ","]).is_err());
        assert!(parse(&["--kernels", ","]).is_err());
        assert!(parse(&["--sizes"]).is_err());
    }

    #[test]
    fn serve_flags_default_off_and_parse() {
        let cli = parse(&[]).unwrap();
        assert!(!cli.serve);
        assert_eq!(cli.serve_rates, vec![500.0, 2_000.0, 8_000.0]);
        assert_eq!(cli.serve_duration_ms, 1_000);
        let cli = parse(&[
            "--serve",
            "--serve-rates",
            "100,1500.5",
            "--serve-duration-ms",
            "250",
            "--kernels",
            "libor",
        ])
        .unwrap();
        assert!(cli.serve);
        assert_eq!(cli.serve_rates, vec![100.0, 1500.5]);
        assert_eq!(cli.serve_duration_ms, 250);
        assert_eq!(cli.kernels.as_deref(), Some(&["libor".to_owned()][..]));
    }

    #[test]
    fn serve_flags_reject_garbage() {
        assert!(parse(&["--serve-rates", "0"]).is_err());
        assert!(parse(&["--serve-rates", "-5"]).is_err());
        assert!(parse(&["--serve-rates", "fast"]).is_err());
        assert!(parse(&["--serve-rates", ","]).is_err());
        assert!(parse(&["--serve-duration-ms", "0"]).is_err());
        assert!(parse(&["--serve", "--scale"]).is_err());
    }

    #[test]
    fn chaos_schedule_flags_parse_and_default_each_other() {
        assert_eq!(parse(&[]).unwrap().chaos_schedule(), None);
        let sched = parse(&["--chaos-seed", "7", "--chaos-rate", "0.25"])
            .unwrap()
            .chaos_schedule()
            .unwrap();
        assert_eq!(sched.seed(), 7);
        assert!((sched.rate() - 0.25).abs() < 1e-12);
        // Either flag alone opts in, the other takes its default.
        let sched = parse(&["--chaos-rate", "1.0"]).unwrap().chaos_schedule();
        assert_eq!(sched.unwrap().seed(), 2012);
        let sched = parse(&["--chaos-seed", "9"]).unwrap().chaos_schedule();
        assert!((sched.unwrap().rate() - 0.1).abs() < 1e-12);
        assert!(parse(&["--chaos-rate", "1.5"]).is_err());
        assert!(parse(&["--chaos-rate", "-0.1"]).is_err());
        assert!(parse(&["--chaos-seed", "soon"]).is_err());
    }

    #[test]
    fn noise_floor_rejects_garbage() {
        assert!(parse(&["--noise-floor", "-0.5"]).is_err());
        assert!(parse(&["--noise-floor", "NaN"]).is_err());
        assert!(parse(&["--noise-floor", "tight"]).is_err());
    }

    #[test]
    fn lint_defaults_off_and_preflight_passes_on_this_tree() {
        assert!(!parse(&[]).unwrap().lint);
        let files = lint_preflight().expect("the merged tree must lint clean");
        assert!(files > 20);
    }

    #[test]
    fn asm_flag_defaults_off_and_parses() {
        assert!(!parse(&[]).unwrap().asm);
        let cli = parse(&["--asm", "--lint"]).unwrap();
        assert!(cli.asm);
        assert!(cli.lint);
    }

    // The real-tree `asm_preflight()` drives `cargo rustc --emit asm` on
    // the kernels crate; the end-to-end run lives in the lint crate's
    // `real_tree_asm_audit_is_clean` (ignored) test and the CI asm-audit
    // job rather than in this unit suite.

    #[test]
    fn failure_flags_default_to_keep_going_with_watchdog() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.timeout_s, 120);
        assert!(!cli.fail_fast);
        assert_eq!(cli.chaos, None);
    }

    #[test]
    fn zero_timeout_disables_watchdog() {
        let cli = parse(&["--timeout", "0"]).unwrap();
        assert_eq!(cli.timeout(), None);
    }

    #[test]
    fn keep_going_overrides_earlier_fail_fast() {
        let cli = parse(&["--fail-fast", "--keep-going"]).unwrap();
        assert!(!cli.fail_fast);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--size", "huge"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--reps"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&["--timeout", "soon"]).is_err());
        assert!(parse(&["--chaos", "gremlins"]).is_err());
    }
}
