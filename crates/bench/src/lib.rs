//! Shared plumbing for the `fig*`/`table*` reproduction binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --size test|quick|paper   problem-size preset (default: quick)
//! --threads N               measurement pool threads (default: hardware)
//! --reps N                  timed repetitions per variant (default: 3)
//! ```
//!
//! Run `cargo run --release -p ninja-bench --bin reproduce` to regenerate
//! every table and figure in one go.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use ninja_kernels::ProblemSize;

/// Parsed command-line options shared by the reproduction binaries.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// Problem-size preset.
    pub size: ProblemSize,
    /// Pool threads for parallel variants.
    pub threads: usize,
    /// Timed repetitions per variant.
    pub reps: u32,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            size: ProblemSize::Quick,
            threads: ninja_parallel::hardware_threads(),
            reps: 3,
        }
    }
}

/// Parses an argument iterator (without the program name).
///
/// Unknown flags are rejected with an error message so typos don't
/// silently measure the wrong configuration.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed values.
pub fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Cli, String> {
    let mut cli = Cli::default();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--size" => {
                let v = value("--size")?;
                cli.size = match v.as_str() {
                    "test" => ProblemSize::Test,
                    "quick" => ProblemSize::Quick,
                    "paper" => ProblemSize::Paper,
                    other => return Err(format!("unknown size '{other}' (test|quick|paper)")),
                };
            }
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if cli.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--reps" => {
                cli.reps = value("--reps")?.parse().map_err(|e| format!("--reps: {e}"))?;
                if cli.reps == 0 {
                    return Err("--reps must be positive".into());
                }
            }
            "--help" | "-h" => {
                return Err("usage: [--size test|quick|paper] [--threads N] [--reps N]".into())
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(cli)
}

/// Parses `std::env::args()` and exits with a message on error.
pub fn cli_from_env() -> Cli {
    match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Cli, String> {
        parse_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_flags() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.size, ProblemSize::Quick);
        assert_eq!(cli.reps, 3);
        assert!(cli.threads >= 1);
    }

    #[test]
    fn parses_all_flags() {
        let cli = parse(&["--size", "paper", "--threads", "4", "--reps", "7"]).unwrap();
        assert_eq!(cli.size, ProblemSize::Paper);
        assert_eq!(cli.threads, 4);
        assert_eq!(cli.reps, 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--size", "huge"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--reps"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
