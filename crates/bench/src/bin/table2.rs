//! T2: prints the platform (machine-description) table.

fn main() {
    println!("{}", ninja_core::experiments::table2_platforms());
}
