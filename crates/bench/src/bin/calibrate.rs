//! Measures this host's scalar/SIMD FLOP rates and streaming bandwidth,
//! builds a calibrated machine description, and compares the model's
//! single-core predictions against actual kernel measurements.

use ninja_core::render::table;
use ninja_kernels::{registry, ProblemSize, Variant};
use ninja_model::{predicted_gap, time_per_elem};

fn main() {
    let cli = ninja_bench::cli_from_env();
    eprintln!("calibrating host (three ~0.3s microbenchmarks)...");
    let cal = ninja_model::measure_host();
    println!(
        "host calibration: scalar {:.2} GFLOP/s, 4-wide SIMD {:.2} GFLOP/s \
         (effective width {:.2}), stream {:.2} GB/s\n",
        cal.scalar_gflops,
        cal.simd_gflops,
        cal.effective_lanes(),
        cal.bandwidth_gbs
    );
    let machine = ninja_model::calibrate::machine_from(cal, cli.threads);
    println!("calibrated machine: {machine}\n");

    eprintln!("measuring kernels ({} size)...", cli.size);
    let harness = ninja_core::Harness::new()
        .size(cli.size)
        .threads(cli.threads)
        .repetitions(cli.reps);
    let suite = harness.run_suite();

    let mut rows = Vec::new();
    for spec in registry() {
        let k = suite.kernel(spec.name).expect("kernel ran");
        let measured = k.measured_gap().expect("gap available");
        let predicted = predicted_gap(&spec.character, &machine);
        let t_ninja = time_per_elem(&spec.character, Variant::Ninja, &machine);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{measured:.2}X"),
            format!("{predicted:.2}X"),
            format!("{:.1}", measured / predicted),
            format!("{:.2e}", t_ninja),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "kernel",
                "measured gap",
                "model gap (calibrated)",
                "ratio",
                "model ninja s/elem"
            ],
            &rows
        )
    );
    println!(
        "(size preset: {}; a ratio near 1 means the calibrated roofline explains \
         this host's single-core gap)",
        ProblemSize::Quick
    );
}
