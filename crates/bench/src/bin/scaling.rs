//! A3: throughput scaling across working-set sizes for the naive and ninja
//! tiers of every kernel.

fn main() {
    let cli = ninja_bench::cli_from_env();
    eprintln!(
        "measuring scaling (test + quick presets, {} thread(s))...",
        cli.threads
    );
    println!(
        "{}",
        ninja_core::experiments::size_scaling(cli.threads, cli.reps)
    );
}
