//! F2: per-benchmark Ninja-gap breakdown on Westmere (model), plus the
//! measured single-host optimization ladder for the same kernels.

fn main() {
    let cli = ninja_bench::cli_from_env();
    println!(
        "{}",
        ninja_core::experiments::fig_breakdown(&ninja_model::machines::westmere())
    );
    eprintln!(
        "measuring host ladder ({} size, {} thread(s))...",
        cli.size, cli.threads
    );
    let harness = ninja_core::Harness::new()
        .size(cli.size)
        .threads(cli.threads)
        .repetitions(cli.reps);
    let suite = harness.run_suite();
    println!(
        "Measured speedup over naive on this host ({} thread(s)):",
        suite.threads
    );
    println!();
    println!("{}", ninja_core::experiments::measured_ladder(&suite));
}
