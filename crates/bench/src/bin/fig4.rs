//! F4: residual gap of low-effort code vs Ninja — measured on this host
//! next to the Westmere model projection.

fn main() {
    let cli = ninja_bench::cli_from_env();
    eprintln!(
        "measuring ({} size, {} thread(s), {} rep(s))...",
        cli.size, cli.threads, cli.reps
    );
    let harness = ninja_core::Harness::new()
        .size(cli.size)
        .threads(cli.threads)
        .repetitions(cli.reps);
    let suite = harness.run_suite();
    println!("{}", ninja_core::experiments::fig4_residual(&suite));
}
