//! T1: prints the benchmark-suite table.

fn main() {
    println!("{}", ninja_core::experiments::table1_suite());
}
