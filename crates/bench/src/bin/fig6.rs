//! F6: programming-effort comparison (LoC changed vs performance reached).

fn main() {
    println!("{}", ninja_core::experiments::fig6_effort());
}
