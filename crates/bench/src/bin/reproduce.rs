//! Regenerates every table and figure of the evaluation in one run and
//! writes the measured suite report to `suite_report.json` / `.csv`.
//!
//! Failed variants (panic, hang, NaN checksum, validation mismatch) never
//! abort the run: the partial report is still written and rendered, and
//! the process exits with status 1 so CI notices.
//!
//! With `--record` the run is also appended to the persistent perf store
//! (default `perfdb/`) and the aggregated `BENCH_history.json` trajectory
//! is regenerated; with `--baseline REF` the fresh measurements are
//! compared against a stored baseline and a confirmed regression makes
//! the exit status 1. A baseline of `latest` resolves *before* the new
//! run is appended, so `--record --baseline latest` compares against the
//! previous run, not itself.
//!
//! With `--scale` the binary runs a thread/size scaling sweep instead of
//! the single-point suite: every kernel×variant is measured across the
//! thread grid (`--threads-max`) and size list (`--sizes`), speedup
//! curves and per-rung efficiency tables are rendered, Amdahl/USL fits
//! are printed per curve, and the grid is written to `sweep_report.json`
//! / `sweep_report.csv`. `--record` appends the sweep to the perf store's
//! sweep log so `perfdb trend` can show serial-fraction drift.
//!
//! With `--serve` the binary drives the `ninja-serve` batched serving
//! layer open-loop at each `--serve-rates` offered rate, optionally
//! under the seeded chaos schedule (`--chaos-seed`/`--chaos-rate`),
//! renders the SLO curve (p50/p99, shed/expired/degraded counts), and
//! writes `serve_report.json`. `--record` appends the curve to the perf
//! store's serve log. An `Ok` response that fails client-side
//! re-verification or a ticket that outlives its resolution contract
//! makes the exit status 1.
//!
//! With `--counters` the run opens hardware performance counters
//! (`perf_event_open`) around every measured repetition and pool job and
//! prints a greppable per-cell table — measured IPC, LLC miss rate, and
//! estimated DRAM GB/s next to the modeled roofline bound, with an
//! explicit agree/disagree verdict — plus per-worker local-vs-steal
//! counter windows. Where the PMU is unavailable (paranoid level, VM,
//! missing PMU) the run prints the reason and measures normally.
//!
//! `--chaos-seed`/`--chaos-rate` also extend plain `--chaos` runs: they
//! install the deterministic probabilistic fault schedule (shared
//! bit-for-bit with `ninja-serve`) and append the scheduled chaos
//! kernel to the suite.

/// The `--scale` path: sweep, render, export, optionally record.
fn run_scale(cli: &ninja_bench::Cli) {
    let config = cli.sweep_config();
    eprintln!(
        "running scaling sweep: sizes={} threads={:?} reps={} timeout={}{}",
        config
            .sizes
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(","),
        config.threads,
        config.reps,
        match config.timeout {
            Some(budget) => format!("{}s", budget.as_secs()),
            None => "off".into(),
        },
        match &config.kernels {
            Some(kernels) => format!(" kernels={}", kernels.join(",")),
            None => String::new(),
        }
    );

    let report = config.run();
    print!("{}", report.render());
    std::fs::write("sweep_report.json", report.to_json()).expect("write sweep_report.json");
    std::fs::write("sweep_report.csv", report.to_csv()).expect("write sweep_report.csv");
    eprintln!("wrote sweep_report.json and sweep_report.csv");

    let mut exit_code = 0;
    let failures: Vec<_> = report.failures().collect();
    if !failures.is_empty() {
        eprintln!("{} sweep cell(s) failed:", failures.len());
        for cell in failures {
            eprintln!(
                "  {}/{} size={} threads={}: {}",
                cell.kernel, cell.variant, cell.size, cell.threads, cell.outcome
            );
        }
        exit_code = 1;
    }

    if cli.record {
        let store = ninja_perfdb::Store::open(&cli.store);
        let meta = ninja_perfdb::RecordMeta::detect(&report.simd_backend);
        let record = ninja_perfdb::SweepRecord::from_sweep_json(&report.to_json(), &meta)
            .expect("sweep report round-trips into the store schema");
        if let Err(msg) = store.append_sweep(&record) {
            eprintln!("reproduce: {msg}");
            std::process::exit(2);
        }
        eprintln!(
            "recorded sweep {} ({} fit(s)) to {}",
            record.id,
            record.fits.len(),
            store.sweeps_path().display()
        );
    }

    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}

/// Runs the `--serve-rates` SLO sweep against one engine and assembles
/// the exportable report. Generic so each kernel's request generator
/// keeps its natural types.
fn serve_curve<K, F>(
    cli: &ninja_bench::Cli,
    engine: &ninja_serve::Engine<K>,
    mut make_req: F,
) -> ninja_serve::ServeReport
where
    K: ninja_serve::BatchKernel,
    F: FnMut(usize) -> (K::Req, K::Resp),
{
    let points = cli
        .serve_rates
        .iter()
        .map(|&rps| {
            let n = ((rps * cli.serve_duration_ms as f64 / 1000.0).round() as usize).max(1);
            eprintln!("  offered {rps} req/s: {n} request(s)...");
            ninja_serve::run_open_loop(engine, &mut make_req, rps, n)
        })
        .collect();
    let chaos = cli.chaos_schedule();
    ninja_serve::ServeReport {
        kernel: engine.kernel().name().to_owned(),
        threads: cli.threads,
        chaos_seed: chaos.as_ref().map(|s| s.seed()),
        chaos_rate: chaos.as_ref().map(|s| s.rate()),
        deadline_us: engine.config().deadline.as_micros() as u64,
        points,
    }
}

/// The `--serve` path: drive the serving layer open-loop at each offered
/// rate, render the SLO curve, export it, optionally record.
fn run_serve(cli: &ninja_bench::Cli) {
    use ninja_serve::{BlackScholesServe, Engine, LiborServe, ServeConfig, TreeSearchServe};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    let kernel_name = cli
        .kernels
        .as_ref()
        .and_then(|k| k.first().cloned())
        .unwrap_or_else(|| "blackscholes".to_owned());
    let chaos = cli.chaos_schedule();
    eprintln!(
        "running serve SLO sweep: kernel={} threads={} rates={:?} duration={}ms chaos={}",
        kernel_name,
        cli.threads,
        cli.serve_rates,
        cli.serve_duration_ms,
        match &chaos {
            Some(s) => format!("seed={} rate={}", s.seed(), s.rate()),
            None => "off".into(),
        }
    );

    let pool = Arc::new(
        ninja_parallel::ThreadPool::builder()
            .num_threads(cli.threads)
            .affinity(cli.affinity)
            .build(),
    );
    let report = match kernel_name.as_str() {
        "blackscholes" => {
            use ninja_kernels::black_scholes::{price_contract, OptionContract};
            let engine = Engine::new(BlackScholesServe::new(pool), ServeConfig::default(), chaos);
            let mut rng = SmallRng::seed_from_u64(7);
            serve_curve(cli, &engine, |_| {
                let c = OptionContract {
                    spot: rng.gen_range(5.0..120.0),
                    strike: rng.gen_range(10.0..100.0),
                    years: rng.gen_range(0.1..5.0),
                    rate: rng.gen_range(0.01..0.08),
                    vol: rng.gen_range(0.05..0.6),
                };
                (c, price_contract(&c))
            })
        }
        "treesearch" => {
            let engine = Engine::new(
                TreeSearchServe::new(cli.size, 3, pool),
                ServeConfig::default(),
                chaos,
            );
            let tree = engine.kernel().tree();
            let hi = tree.num_keys() as f32 * 1.3;
            let mut rng = SmallRng::seed_from_u64(9);
            serve_curve(cli, &engine, |_| {
                let q = rng.gen_range(-1.0..hi);
                (q, tree.lower_bound_bst(q))
            })
        }
        "libor" => {
            use ninja_kernels::libor::{default_init_rates, default_vols, price_path_f64, NMAT};
            let engine = Engine::new(LiborServe::new(pool), ServeConfig::default(), chaos);
            let rates = default_init_rates();
            let vols = default_vols();
            let mut rng = SmallRng::seed_from_u64(10);
            serve_curve(cli, &engine, |_| {
                let z: [f32; NMAT] = std::array::from_fn(|_| rng.gen_range(-3.0..3.0));
                (z, price_path_f64(&rates, &vols, &z))
            })
        }
        other => {
            eprintln!(
                "reproduce: unknown serve kernel '{other}' \
                 (expected blackscholes, treesearch, or libor)"
            );
            std::process::exit(2);
        }
    };

    print!("{}", report.render());
    let json = serde_json::to_string_pretty(&report).expect("serve report serializes");
    std::fs::write("serve_report.json", &json).expect("write serve_report.json");
    eprintln!("wrote serve_report.json");

    let mut exit_code = 0;
    let incorrect: u64 = report.points.iter().map(|p| p.incorrect).sum();
    let unresolved: u64 = report.points.iter().map(|p| p.unresolved).sum();
    if incorrect > 0 || unresolved > 0 {
        eprintln!(
            "reproduce: serving contract violated: {incorrect} incorrect response(s), \
             {unresolved} unresolved ticket(s)"
        );
        exit_code = 1;
    }

    if cli.record {
        let store = ninja_perfdb::Store::open(&cli.store);
        let meta = ninja_perfdb::RecordMeta::detect(ninja_simd::backend_name());
        let record = ninja_perfdb::ServeRecord::from_serve_json(&json, &meta)
            .expect("serve report round-trips into the store schema");
        if let Err(msg) = store.append_serve(&record) {
            eprintln!("reproduce: {msg}");
            std::process::exit(2);
        }
        eprintln!(
            "recorded serve {} ({} point(s)) to {}",
            record.id,
            record.points.len(),
            store.serves_path().display()
        );
    }

    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}

fn main() {
    let cli = ninja_bench::cli_from_env();
    // Resolve the ISA dispatch backend up front: `active()` falls back
    // silently on an invalid `NINJA_ISA`, which is right for libraries
    // but wrong for a measurement binary — a forced-backend CI run that
    // quietly measured the wrong ISA would poison the perf store. Fail
    // hard here, before anything is measured or recorded.
    let isa = match ninja_simd::isa::resolve_from_env() {
        Ok(kind) => kind,
        Err(msg) => {
            eprintln!("reproduce: {msg}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "isa dispatch: {} ({}-bit vectors)",
        isa.name(),
        isa.width_bits()
    );
    if cli.serve {
        run_serve(&cli);
        return;
    }
    if cli.scale {
        run_scale(&cli);
        return;
    }
    if cli.trace.is_some() {
        ninja_probe::set_tracing(true);
    }
    if cli.probe_metrics {
        ninja_probe::set_metrics(true);
    }
    if cli.counters {
        ninja_probe::set_counters(true);
        // One up-front greppable status line: CI asserts the fallback
        // path prints a reason instead of failing the run.
        match ninja_probe::counters::availability() {
            status if status.is_available() => eprintln!("counters: available"),
            status => eprintln!(
                "counters: unavailable ({})",
                status.reason().unwrap_or("unknown")
            ),
        }
    }
    if cli.lint {
        match ninja_bench::lint_preflight() {
            Ok(files) => eprintln!("lint preflight: clean ({files} file(s) scanned)"),
            Err(findings) => {
                eprintln!("lint preflight failed; refusing to measure a mislabeled suite:");
                eprintln!("{findings}");
                std::process::exit(1);
            }
        }
    }
    let mut vec_profiles = Vec::new();
    if cli.asm {
        match ninja_bench::asm_preflight() {
            Ok(profiles) => {
                eprintln!(
                    "asm preflight: clean ({} rung profile(s) classified)",
                    profiles.len()
                );
                vec_profiles = profiles;
            }
            Err(findings) => {
                eprintln!("asm preflight failed; refusing to measure unvectorized rungs:");
                eprintln!("{findings}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "running full reproduction: size={} threads={}{} reps={} timeout={} mode={}{}",
        cli.size,
        cli.threads,
        if cli.affinity { " affinity=on" } else { "" },
        cli.reps,
        match cli.timeout() {
            Some(budget) => format!("{}s", budget.as_secs()),
            None => "off".into(),
        },
        if cli.fail_fast {
            "fail-fast"
        } else {
            "keep-going"
        },
        match cli.chaos {
            Some(mode) => format!(" chaos={mode}"),
            None => String::new(),
        }
    );

    let mut harness = ninja_core::Harness::new()
        .size(cli.size)
        .threads(cli.threads)
        .affinity(cli.affinity)
        .repetitions(cli.reps)
        .fail_fast(cli.fail_fast);
    harness = match cli.timeout() {
        Some(budget) => harness.timeout(budget),
        None => harness.no_timeout(),
    };
    if cli.probe_metrics {
        // ~1 s of microbenchmarks, opted into: absolute percent-of-roofline
        // numbers are only worth quoting against a calibrated machine.
        harness = harness.attribution_machine(ninja_model::calibrate::calibrated_host(cli.threads));
    }
    let mut extra = Vec::new();
    if let Some(mode) = cli.chaos {
        extra.push(ninja_kernels::chaos::spec(mode));
    }
    if let Some(sched) = cli.chaos_schedule() {
        // The same deterministic schedule ninja-serve replays: install it
        // process-wide and measure the scheduled chaos kernel alongside.
        eprintln!(
            "chaos schedule installed: seed={} rate={}",
            sched.seed(),
            sched.rate()
        );
        ninja_kernels::chaos::set_schedule(Some(sched));
        extra.push(ninja_kernels::chaos::spec_scheduled());
    }

    let (mut suite, rendered) = ninja_core::experiments::full_report_with(&harness, extra);
    suite.vec_profiles = vec_profiles;
    println!("{rendered}");
    std::fs::write("suite_report.json", suite.to_json()).expect("write suite_report.json");
    std::fs::write("suite_report.csv", suite.to_csv()).expect("write suite_report.csv");
    eprintln!("wrote suite_report.json and suite_report.csv");

    let has_gap = suite.kernels.iter().any(|k| k.measured_gap().is_some());
    if has_gap {
        println!(
            "measured average gap (this host, {} thread(s)): {:.2}X; average residual: {:.2}X",
            suite.threads,
            suite.average_gap(),
            suite.average_residual()
        );
    } else {
        println!("no kernel produced a complete variant ladder; gap averages unavailable");
    }

    let mut exit_code = 0;

    if cli.probe_metrics {
        println!("\nper-cell attribution (calibrated roofline):");
        for k in &suite.kernels {
            for v in &k.variants {
                if let Some(a) = &v.attribution {
                    println!("  {}/{}: {}", k.kernel, v.variant, a.summary());
                }
            }
        }
        // Cumulative scheduler traffic over the whole run, one greppable
        // line (CI asserts the stealing path actually exercised).
        let pm = harness.pool_metrics();
        let sum = |f: fn(&ninja_probe::WorkerStats) -> u64| pm.workers.iter().map(f).sum::<u64>();
        println!(
            "pool counters: steals={} local_pops={} injector_pops={} steal_ratio={:.3} parked_ms={}",
            sum(|w| w.steals),
            sum(|w| w.local_pops),
            sum(|w| w.injector_pops),
            pm.steal_ratio(),
            sum(|w| w.parked_ns) / 1_000_000,
        );
    }

    if cli.counters {
        let fmt = |v: Option<f64>, precision: usize| match v {
            Some(x) => format!("{x:.precision$}"),
            None => "-".to_owned(),
        };
        // Greppable per-cell table: `counters <kernel>/<variant> ipc=…`.
        // Cells stay silent when the PMU produced nothing for them.
        println!("\nper-cell hardware counters (measured vs modeled roofline):");
        let mut counted = 0usize;
        for k in &suite.kernels {
            for v in &k.variants {
                let Some(a) = &v.attribution else { continue };
                if !a.has_counter_data() {
                    continue;
                }
                counted += 1;
                println!(
                    "  counters {}/{} ipc={} llc_miss={} dram_gbs={} measured={} model={} agree={}",
                    k.kernel,
                    v.variant,
                    fmt(a.measured_ipc, 2),
                    fmt(a.measured_llc_miss_rate, 3),
                    fmt(a.measured_dram_gbs, 1),
                    a.measured_bound.as_deref().unwrap_or("-"),
                    a.bound,
                    match a.agreement {
                        Some(true) => "yes",
                        Some(false) => "NO",
                        None => "-",
                    }
                );
            }
        }
        if counted == 0 {
            println!("  (no cell produced counter samples)");
        }
        // Per-worker counter windows split by job source: a steal-path
        // IPC below the local-pop IPC is cold-cache migration cost made
        // visible. Only event ratios are meaningful here (the windows
        // carry no wall time), so no bandwidth column.
        let pm = harness.pool_metrics();
        let mut windows = 0usize;
        for (i, w) in pm.workers.iter().enumerate() {
            for (source, win) in [("local", &w.local_window), ("steal", &w.steal_window)] {
                if !win.any_counted() {
                    continue;
                }
                windows += 1;
                println!(
                    "  worker {i} {source} ipc={} llc_miss={} instructions={}",
                    fmt(win.ipc(), 2),
                    fmt(win.llc_miss_rate(), 3),
                    win.instructions,
                );
            }
        }
        if windows == 0 {
            println!("  (no worker counter windows; pool jobs ran uncounted)");
        }
    }

    if let Some(path) = &cli.trace {
        let events = ninja_probe::take_events();
        let json = ninja_probe::chrome_trace_json(&events);
        std::fs::write(path, &json).expect("write trace JSON");
        // Lenient self-check (a timed-out variant's abandoned thread may
        // leave unclosed spans, so no strict B/E matching here): the JSON
        // must parse, and every variant that actually executed must have
        // opened a span. Factory-panicked variants never execute, so they
        // are not expected to appear.
        let parsed: serde::Value = serde_json::from_str(&json).expect("trace JSON must parse");
        let total = match &parsed {
            serde::Value::Array(entries) => entries.len(),
            _ => panic!("trace JSON must be a top-level array"),
        };
        let variant_spans = events
            .iter()
            .filter(|e| e.ph == ninja_probe::Phase::Begin && e.name.starts_with("variant:"))
            .count();
        let executed = suite
            .kernels
            .iter()
            .flat_map(|k| &k.variants)
            .filter(|v| !matches!(v.outcome, ninja_core::VariantOutcome::Panicked { .. }))
            .count();
        if variant_spans < executed {
            eprintln!(
                "reproduce: trace is missing variant spans ({variant_spans} spans for \
                 {executed} executed variants)"
            );
            exit_code = 1;
        }
        eprintln!(
            "wrote {path}: {total} trace events, {variant_spans} variant span(s) — load it in \
             Perfetto (https://ui.perfetto.dev) or chrome://tracing"
        );
    }

    if suite.has_failures() {
        eprintln!(
            "{} variant(s) failed; partial report written:\n{}",
            suite.failures().len(),
            suite.failure_summary()
        );
        exit_code = 1;
    }

    if cli.record || cli.baseline.is_some() {
        let store = ninja_perfdb::Store::open(&cli.store);
        let mut meta = ninja_perfdb::RecordMeta::detect(&suite.simd_backend);
        if cli.record {
            // Calibration costs ~1 s; only pay for it when the fingerprint
            // actually lands in the store.
            let machine = ninja_model::calibrate::calibrated_host(cli.threads);
            meta.machine.calibrated_freq_ghz = Some(machine.freq_ghz);
            meta.machine.calibrated_simd_f32_lanes = Some(machine.simd_f32_lanes);
            meta.machine.calibrated_core_bandwidth_gbs = Some(machine.core_bandwidth_gbs);
        }
        let record = suite.to_run_record(&meta);

        // Resolve the baseline before appending so `latest` means "the
        // previous recorded run", never the one we are about to write.
        let baseline = match &cli.baseline {
            Some(reference) => match ninja_perfdb::resolve_reference(&store, reference, 1) {
                Ok(baseline) => Some(baseline),
                Err(msg) => {
                    eprintln!("reproduce: {msg}");
                    std::process::exit(2);
                }
            },
            None => None,
        };

        if cli.record {
            if let Err(msg) = store.append(&record) {
                eprintln!("reproduce: {msg}");
                std::process::exit(2);
            }
            if !record.excluded.is_empty() {
                eprintln!(
                    "perf store: excluded fault-injection kernel(s): {}",
                    record.excluded.join(", ")
                );
            }
            eprintln!(
                "recorded run {} to {}",
                record.id,
                store.runs_path().display()
            );
            match ninja_perfdb::write_history(
                &store,
                std::path::Path::new(ninja_perfdb::HISTORY_FILE),
            ) {
                Ok(history) => eprintln!(
                    "wrote {} ({} run(s), {} kernel(s))",
                    ninja_perfdb::HISTORY_FILE,
                    history.runs,
                    history.kernels.len()
                ),
                Err(msg) => {
                    eprintln!("reproduce: {msg}");
                    std::process::exit(2);
                }
            }
        }

        if let Some(baseline) = baseline {
            let mut cfg = ninja_perfdb::CompareConfig::gate();
            if let Some(floor) = cli.noise_floor {
                cfg.noise_floor = floor;
            }
            let report = ninja_perfdb::compare_records(&baseline, &record, &cfg);
            print!("{}", report.render_text());
            if report.has_regressions() {
                eprintln!(
                    "reproduce: confirmed perf regression(s) vs baseline {}",
                    baseline.id
                );
                exit_code = 1;
            }
        }
    }

    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
