//! Regenerates every table and figure of the evaluation in one run and
//! writes the measured suite report to `suite_report.json` / `.csv`.
//!
//! Failed variants (panic, hang, NaN checksum, validation mismatch) never
//! abort the run: the partial report is still written and rendered, and
//! the process exits with status 1 so CI notices.

fn main() {
    let cli = ninja_bench::cli_from_env();
    if cli.lint {
        match ninja_bench::lint_preflight() {
            Ok(files) => eprintln!("lint preflight: clean ({files} file(s) scanned)"),
            Err(findings) => {
                eprintln!("lint preflight failed; refusing to measure a mislabeled suite:");
                eprintln!("{findings}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "running full reproduction: size={} threads={} reps={} timeout={} mode={}{}",
        cli.size,
        cli.threads,
        cli.reps,
        match cli.timeout() {
            Some(budget) => format!("{}s", budget.as_secs()),
            None => "off".into(),
        },
        if cli.fail_fast {
            "fail-fast"
        } else {
            "keep-going"
        },
        match cli.chaos {
            Some(mode) => format!(" chaos={mode}"),
            None => String::new(),
        }
    );

    let mut harness = ninja_core::Harness::new()
        .size(cli.size)
        .threads(cli.threads)
        .repetitions(cli.reps)
        .fail_fast(cli.fail_fast);
    harness = match cli.timeout() {
        Some(budget) => harness.timeout(budget),
        None => harness.no_timeout(),
    };
    let extra = match cli.chaos {
        Some(mode) => vec![ninja_kernels::chaos::spec(mode)],
        None => Vec::new(),
    };

    let (suite, rendered) = ninja_core::experiments::full_report_with(&harness, extra);
    println!("{rendered}");
    std::fs::write("suite_report.json", suite.to_json()).expect("write suite_report.json");
    std::fs::write("suite_report.csv", suite.to_csv()).expect("write suite_report.csv");
    eprintln!("wrote suite_report.json and suite_report.csv");

    let has_gap = suite.kernels.iter().any(|k| k.measured_gap().is_some());
    if has_gap {
        println!(
            "measured average gap (this host, {} thread(s)): {:.2}X; average residual: {:.2}X",
            suite.threads,
            suite.average_gap(),
            suite.average_residual()
        );
    } else {
        println!("no kernel produced a complete variant ladder; gap averages unavailable");
    }

    if suite.has_failures() {
        eprintln!(
            "{} variant(s) failed; partial report written:\n{}",
            suite.failures().len(),
            suite.failure_summary()
        );
        std::process::exit(1);
    }
}
