//! Regenerates every table and figure of the evaluation in one run and
//! writes the measured suite report to `suite_report.json` / `.csv`.

fn main() {
    let cli = ninja_bench::cli_from_env();
    eprintln!(
        "running full reproduction: size={} threads={} reps={}",
        cli.size, cli.threads, cli.reps
    );
    let (suite, rendered) = ninja_core::experiments::full_report(cli.size, cli.threads, cli.reps);
    println!("{rendered}");
    std::fs::write("suite_report.json", suite.to_json()).expect("write suite_report.json");
    std::fs::write("suite_report.csv", suite.to_csv()).expect("write suite_report.csv");
    eprintln!("wrote suite_report.json and suite_report.csv");
    println!(
        "measured average gap (this host, {} thread(s)): {:.2}X; average residual: {:.2}X",
        suite.threads,
        suite.average_gap(),
        suite.average_residual()
    );
}
