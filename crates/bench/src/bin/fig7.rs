//! F7: hardware gather-support ablation.

fn main() {
    println!("{}", ninja_core::experiments::fig7_hardware_gather());
}
