//! F3: per-benchmark Ninja-gap breakdown projected on Intel MIC.

fn main() {
    println!(
        "{}",
        ninja_core::experiments::fig_breakdown(&ninja_model::machines::mic())
    );
}
