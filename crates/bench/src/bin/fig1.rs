//! F1: projected Ninja-gap growth across CPU generations.

fn main() {
    println!("{}", ninja_core::experiments::fig1_gap_growth());
}
