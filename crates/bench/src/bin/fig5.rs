//! F5: residual gap vs Ninja projected on Intel MIC.

fn main() {
    println!("{}", ninja_core::experiments::fig5_mic_residual());
}
