//! The Ninja-gap analysis harness.
//!
//! This crate is the paper's "experimental apparatus": it takes the
//! benchmark suite from [`ninja_kernels`], times every (kernel × variant)
//! pair with validation, computes measured Ninja gaps and residuals,
//! combines them with [`ninja_model`] projections for the machines this
//! host cannot be (multi-core Westmere, MIC, future parts), and renders
//! every table and figure of the paper as ASCII tables/bars, CSV, or JSON.
//!
//! Typical use:
//!
//! ```no_run
//! use ninja_core::{Harness, render};
//! use ninja_kernels::ProblemSize;
//!
//! let harness = Harness::new().size(ProblemSize::Quick).repetitions(3);
//! let suite = harness.run_suite();
//! println!("{}", render::suite_table(&suite));
//! println!("average measured gap: {:.1}X", suite.average_gap());
//! ```
//!
//! The per-figure entry points live in [`experiments`]; the `ninja-bench`
//! crate wraps each one in a `fig*`/`table*` binary.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
mod harness;
mod measure;
pub mod render;
mod report;
pub mod sweep;

pub use harness::Harness;
pub use measure::{measure, measure_with_samples, Measurement};
pub use report::{KernelReport, SuiteReport, VariantOutcome, VariantResult, VecProfileRecord};
pub use sweep::{thread_grid, SweepCell, SweepConfig, SweepFit, SweepReport};
