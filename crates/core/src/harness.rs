//! The measurement driver: runs (kernel × variant) pairs with validation,
//! per-variant fault isolation, and an optional wall-clock watchdog.
//!
//! # Failure semantics
//!
//! A suite run is a grid of (kernel, variant) cells, and one bad cell must
//! not cost the rest of the grid. Each variant's validate+measure step is
//! isolated: panics are caught ([`std::panic::catch_unwind`]) and recorded
//! as [`VariantOutcome::Panicked`] with the original payload's message;
//! validation mismatches become [`VariantOutcome::ValidationFailed`];
//! non-finite checksums become [`VariantOutcome::NonFinite`]. With a
//! [`timeout`](Harness::timeout) budget set, the step runs on a watchdog
//! thread — if the budget elapses the thread is abandoned, the variant is
//! recorded as [`VariantOutcome::TimedOut`], the pool is replaced with a
//! fresh one (the abandoned step may still hold the old pool hostage), and
//! the suite moves on. After a panic or timeout the kernel instance is
//! considered tainted and is rebuilt from its spec before the next variant.

use crate::measure::measure_with_samples;
use crate::report::{KernelReport, SuiteReport, VariantOutcome, VariantResult};
use crate::Measurement;
use ninja_kernels::{registry, Instance, KernelSpec, ProblemSize, Variant};
use ninja_model::{nominal_host, Attribution, Machine};
use ninja_parallel::ThreadPool;
use ninja_probe::counters::{CounterSample, ThreadCounters};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Turns a caught panic payload into the message the report records.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_owned())
}

/// What one isolated validate+measure attempt produced.
enum Attempt {
    Measured {
        timing: Measurement,
        checksum: f64,
        /// Hardware-counter totals over the timed reps (warmup windows
        /// dropped), `None` when counters were off or unavailable.
        counters: Option<CounterSample>,
    },
    Invalid {
        reason: String,
    },
}

/// Runs validation (when enabled) and measurement for one variant. This is
/// the code that executes inside the isolation boundary — inline under
/// `catch_unwind`, or on a watchdog thread when a budget is set. Counter
/// windows open on *this* thread, which is the thread that calls
/// `instance.run` (the caller thread, or the watchdog thread when a
/// budget is set) — pool workers carry their own per-thread groups.
fn exec_variant(
    instance: &mut dyn Instance,
    v: Variant,
    pool: &ThreadPool,
    validate: bool,
    warmup: u32,
    runs: u32,
) -> Attempt {
    if validate {
        let _validate_span = ninja_probe::span("validate");
        if let Err(e) = instance.validate(v, pool) {
            return Attempt::Invalid { reason: e.detail };
        }
    }
    let mut checksum = 0.0;
    let keep_samples = ninja_probe::metrics_enabled();
    let mut counters = ninja_probe::counters_enabled().then(ThreadCounters::open);
    // One delta per `measure` body call, in call order: `warmup` untimed
    // windows first, then `runs` timed ones. Sliced apart after the fact
    // so the totals cover exactly the reps the median covers.
    let mut windows: Vec<Option<CounterSample>> = Vec::new();
    let timing = measure_with_samples(warmup, runs, keep_samples, || match counters.as_mut() {
        Some(c) => {
            let (sum, delta) = c.window(|| instance.run(v, pool));
            checksum = sum;
            if let Some(d) = &delta {
                if ninja_probe::tracing_enabled() {
                    if let Some(ipc) = d.ipc() {
                        ninja_probe::counter("cell ipc", &[("ipc", ipc)]);
                    }
                }
            }
            windows.push(delta);
        }
        None => checksum = instance.run(v, pool),
    });
    let counters = counters.and_then(|c| {
        if !c.status().is_available() {
            return None;
        }
        let mut total = CounterSample::default();
        for delta in windows.iter().skip(warmup as usize).flatten() {
            total.add(delta);
        }
        total.any_counted().then_some(total)
    });
    Attempt::Measured {
        timing,
        checksum,
        counters,
    }
}

/// Configures and runs Ninja-gap measurements.
///
/// Non-consuming builder: configure with [`size`](Harness::size),
/// [`seed`](Harness::seed), [`repetitions`](Harness::repetitions),
/// [`threads`](Harness::threads), [`timeout`](Harness::timeout),
/// [`fail_fast`](Harness::fail_fast), then call
/// [`run_suite`](Harness::run_suite) or [`run_kernel`](Harness::run_kernel).
#[derive(Debug)]
pub struct Harness {
    size: ProblemSize,
    seed: u64,
    warmup: u32,
    runs: u32,
    /// Interior mutability: a timed-out variant may leave its (abandoned)
    /// watchdog thread using the pool, so the harness swaps in a fresh one.
    /// The abandoned thread's `Arc` clone keeps the old pool alive, which
    /// is exactly what makes the swap non-blocking: `ThreadPool::drop`
    /// (which joins workers) never runs while a thread is stuck in it.
    pool: Mutex<Arc<ThreadPool>>,
    threads: usize,
    affinity: bool,
    validate: bool,
    timeout: Option<Duration>,
    fail_fast: bool,
    /// Roofline denominator for per-cell attribution. `None` means "use a
    /// [`nominal_host`] sized to the current thread count" — resolved
    /// lazily so `threads()` never clobbers an explicitly supplied
    /// (e.g. calibrated) machine.
    attribution_machine: Option<Machine>,
}

impl Harness {
    /// Creates a harness with default settings: `Quick` size, seed 42, one
    /// warmup plus three timed runs, a hardware-sized pool, validation on,
    /// no watchdog, keep-going on failures.
    pub fn new() -> Self {
        let threads = ninja_parallel::hardware_threads();
        Self {
            size: ProblemSize::Quick,
            seed: 42,
            warmup: 1,
            runs: 3,
            pool: Mutex::new(Arc::new(ThreadPool::new())),
            threads,
            affinity: false,
            validate: true,
            timeout: None,
            fail_fast: false,
            attribution_machine: None,
        }
    }

    /// Sets the problem-size preset.
    pub fn size(mut self, size: ProblemSize) -> Self {
        self.size = size;
        self
    }

    /// Sets the input-generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of timed repetitions (median is reported).
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn repetitions(mut self, runs: u32) -> Self {
        assert!(runs > 0, "need at least one repetition");
        self.runs = runs;
        self
    }

    /// Sets the number of pool threads used by parallel variants.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self.pool = Mutex::new(self.make_pool());
        self
    }

    /// Round-robin-pins pool workers to cores (off by default). Best
    /// effort — see [`ThreadPoolBuilder::affinity`](ninja_parallel::ThreadPoolBuilder::affinity).
    pub fn affinity(mut self, enabled: bool) -> Self {
        self.affinity = enabled;
        self.pool = Mutex::new(self.make_pool());
        self
    }

    /// Disables output validation (measurement only). Validation is on by
    /// default and strongly recommended.
    pub fn skip_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Sets a per-variant wall-clock budget covering validate+measure.
    ///
    /// Off by default (benchmarks should never eat a watchdog-thread
    /// context switch); the `reproduce` binary turns it on so a hung
    /// variant cannot stall the full reproduction. A variant exceeding the
    /// budget is recorded as [`VariantOutcome::TimedOut`] and its thread
    /// abandoned; the pool is rebuilt so later variants run on healthy
    /// workers.
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Removes the per-variant budget (the default).
    pub fn no_timeout(mut self) -> Self {
        self.timeout = None;
        self
    }

    /// Stops the run at the first failed variant (remaining variants and
    /// kernels are simply absent from the report). Default is keep-going:
    /// record the failure and continue.
    pub fn fail_fast(mut self, enabled: bool) -> Self {
        self.fail_fast = enabled;
        self
    }

    /// Sets the machine description used as the roofline denominator when
    /// attributing measured cells (achieved GFLOP/s, percent-of-roofline,
    /// bound classification). Defaults to an uncalibrated
    /// [`nominal_host`] sized to the thread count; pass
    /// [`ninja_model::calibrated_host`] output for absolute numbers worth
    /// quoting.
    pub fn attribution_machine(mut self, machine: Machine) -> Self {
        self.attribution_machine = Some(machine);
        self
    }

    /// The machine cells are attributed against (explicit or nominal).
    fn machine(&self) -> Machine {
        self.attribution_machine
            .clone()
            .unwrap_or_else(|| nominal_host(self.threads))
    }

    /// Number of threads parallel variants will use.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// The current pool handle (test hook; the handle changes after a
    /// timeout rebuilds the pool).
    fn pool_handle(&self) -> Arc<ThreadPool> {
        Arc::clone(&self.pool.lock())
    }

    /// Builds a pool from the harness's current scheduling knobs.
    fn make_pool(&self) -> Arc<ThreadPool> {
        Arc::new(
            ThreadPool::builder()
                .num_threads(self.threads)
                .affinity(self.affinity)
                .build(),
        )
    }

    /// Cumulative scheduler counters from the current pool (all zeros
    /// unless [`ninja_probe::set_metrics`] was on while work ran; the
    /// handle resets after a timeout rebuilds the pool).
    pub fn pool_metrics(&self) -> ninja_probe::PoolMetrics {
        self.pool_handle().metrics()
    }

    /// Replaces the pool after a timeout abandoned a thread that may still
    /// be using (or blocking) the old one.
    fn rebuild_pool(&self) {
        *self.pool.lock() = self.make_pool();
    }

    /// Runs one variant inside the isolation boundary, returning the
    /// instance for reuse when it survived untainted.
    fn run_variant(
        &self,
        spec: &KernelSpec,
        v: Variant,
        mut instance: Box<dyn Instance>,
        work: ninja_kernels::Work,
    ) -> (Option<Box<dyn Instance>>, VariantResult) {
        let _variant_span = if ninja_probe::tracing_enabled() {
            Some(ninja_probe::span(&format!("variant:{}/{}", spec.name, v)))
        } else {
            None
        };
        let pool = self.pool_handle();
        // A second handle for metrics snapshots: `pool` is moved into the
        // watchdog thread when a budget is set, but the Arc it clones from
        // stays ours to inspect after the attempt returns.
        let metrics_pool = Arc::clone(&pool);
        let pool_before = ninja_probe::metrics_enabled().then(|| metrics_pool.metrics());
        let (validate, warmup, runs) = (self.validate, self.warmup, self.runs);

        let (instance, attempt) = match self.timeout {
            None => {
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    exec_variant(instance.as_mut(), v, &pool, validate, warmup, runs)
                }));
                match attempt {
                    Ok(a) => (Some(instance), Ok(a)),
                    Err(payload) => (None, Err(panic_message(payload.as_ref()))),
                }
            }
            Some(budget) => {
                let (tx, rx) = mpsc::channel();
                let builder =
                    std::thread::Builder::new().name(format!("watchdog-{}-{}", spec.name, v));
                let handle = builder
                    .spawn(move || {
                        let attempt = catch_unwind(AssertUnwindSafe(|| {
                            exec_variant(instance.as_mut(), v, &pool, validate, warmup, runs)
                        }));
                        // The receiver may have given up (timeout); a send
                        // error just drops the instance with this thread.
                        let _ = tx.send((instance, attempt));
                    })
                    .expect("spawn watchdog thread");
                match rx.recv_timeout(budget) {
                    Ok((instance, Ok(a))) => {
                        let _ = handle.join();
                        (Some(instance), Ok(a))
                    }
                    Ok((_tainted, Err(payload))) => {
                        let _ = handle.join();
                        (None, Err(panic_message(payload.as_ref())))
                    }
                    Err(_) => {
                        // The variant is stuck; abandon its thread (it holds
                        // an Arc to the old pool, keeping it alive) and give
                        // later variants a fresh pool. The abandoned thread
                        // may hold an open trace span that will never close;
                        // tag it so span validation knows the unpaired B
                        // event is abandonment, not a tracer bug.
                        ninja_probe::mark_thread_abandoned(&format!(
                            "watchdog-{}-{}",
                            spec.name, v
                        ));
                        drop(handle);
                        self.rebuild_pool();
                        let outcome = VariantOutcome::TimedOut {
                            budget_s: budget.as_secs_f64(),
                        };
                        return (None, VariantResult::failed(v, validate, outcome));
                    }
                }
            }
        };

        let result = match attempt {
            Err(message) => {
                VariantResult::failed(v, validate, VariantOutcome::Panicked { message })
            }
            Ok(Attempt::Invalid { reason }) => {
                VariantResult::failed(v, validate, VariantOutcome::ValidationFailed { reason })
            }
            Ok(Attempt::Measured { checksum, .. }) if !checksum.is_finite() => {
                VariantResult::failed(v, validate, VariantOutcome::NonFinite)
            }
            Ok(Attempt::Measured {
                timing,
                checksum,
                counters,
            }) => {
                let median = timing.median_s;
                let machine = self.machine();
                let mut attribution = Attribution::new(work.flops, work.bytes, median, &machine);
                if let Some(before) = pool_before {
                    let window = metrics_pool.metrics().delta(&before);
                    if window.total_busy_ns() > 0 {
                        attribution = attribution.with_pool(
                            window.imbalance_ratio(),
                            window.idle_fraction(),
                            window.steal_ratio(),
                        );
                    }
                }
                if let Some(sample) = &counters {
                    attribution = attribution.with_counters(
                        &machine,
                        sample.ipc(),
                        sample.llc_miss_rate(),
                        sample.dram_gbs(),
                    );
                }
                VariantResult {
                    variant: v.name().to_owned(),
                    timing: Some(timing),
                    checksum,
                    gflops: work.flops / median / 1e9,
                    gbs: work.bytes / median / 1e9,
                    validated: validate,
                    outcome: VariantOutcome::Ok,
                    attribution: Some(attribution),
                }
            }
        };
        (instance, result)
    }

    /// Builds a fresh instance for `spec`, converting a panicking factory
    /// into a recorded failure instead of a crashed suite.
    fn make_instance(&self, spec: &KernelSpec) -> Result<Box<dyn Instance>, String> {
        catch_unwind(AssertUnwindSafe(|| (spec.make)(self.size, self.seed)))
            .map_err(|payload| panic_message(payload.as_ref()))
    }

    /// Runs every variant of one kernel.
    ///
    /// Never panics on a misbehaving variant: each variant's outcome
    /// (including panics, validation failures, timeouts, and non-finite
    /// checksums) is recorded in the report.
    pub fn run_kernel(&self, spec: &KernelSpec) -> KernelReport {
        let _kernel_span = if ninja_probe::tracing_enabled() {
            Some(ninja_probe::span(&format!("kernel:{}", spec.name)))
        } else {
            None
        };
        let mut variants = Vec::with_capacity(Variant::ALL.len());
        let mut instance = match self.make_instance(spec) {
            Ok(i) => Some(i),
            Err(message) => {
                // The factory itself died: every variant inherits the failure.
                for v in Variant::ALL {
                    variants.push(VariantResult::failed(
                        v,
                        self.validate,
                        VariantOutcome::Panicked {
                            message: message.clone(),
                        },
                    ));
                }
                return KernelReport {
                    kernel: spec.name.to_owned(),
                    bound: spec.bound.to_owned(),
                    variants,
                };
            }
        };
        let work = instance.as_ref().map(|i| i.work()).unwrap_or_default();
        for v in Variant::ALL {
            // Rebuild the instance if the previous variant tainted it
            // (panic or timeout); inputs are seed-deterministic, so the
            // rebuilt instance measures the same problem.
            let inst = match instance.take() {
                Some(i) => i,
                None => match self.make_instance(spec) {
                    Ok(i) => i,
                    Err(message) => {
                        variants.push(VariantResult::failed(
                            v,
                            self.validate,
                            VariantOutcome::Panicked { message },
                        ));
                        continue;
                    }
                },
            };
            let (back, result) = self.run_variant(spec, v, inst, work);
            instance = back;
            let failed = !result.is_ok();
            variants.push(result);
            if failed && self.fail_fast {
                break;
            }
        }
        KernelReport {
            kernel: spec.name.to_owned(),
            bound: spec.bound.to_owned(),
            variants,
        }
    }

    /// Runs an explicit list of kernel specs (the full registry plus any
    /// injected extras — e.g. the chaos kernel in fault-injection tests).
    ///
    /// With [`fail_fast`](Harness::fail_fast) the run stops after the
    /// first kernel that records a failure; otherwise every spec runs and
    /// failures are recorded per variant.
    pub fn run_specs(&self, specs: &[KernelSpec]) -> SuiteReport {
        let _suite_span = ninja_probe::span("suite");
        let mut report = SuiteReport::new_empty(self.size, self.seed, self.threads);
        for spec in specs {
            let kernel_report = self.run_kernel(spec);
            let failed = kernel_report.failures().next().is_some();
            report.kernels.push(kernel_report);
            if failed && self.fail_fast {
                break;
            }
        }
        report
    }

    /// Runs the full ten-kernel suite.
    pub fn run_suite(&self) -> SuiteReport {
        self.run_specs(&registry())
    }

    /// Runs a named subset of the suite (names as in the registry).
    pub fn run_kernels(&self, names: &[&str]) -> SuiteReport {
        let specs: Vec<KernelSpec> = registry()
            .into_iter()
            .filter(|s| names.contains(&s.name))
            .collect();
        self.run_specs(&specs)
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_kernels::chaos::{self, FailureMode};

    fn test_harness() -> Harness {
        Harness::new()
            .size(ProblemSize::Test)
            .threads(2)
            .repetitions(1)
    }

    fn outcome_of(r: &KernelReport, v: Variant) -> &VariantOutcome {
        &r.variants
            .iter()
            .find(|x| x.variant == v.name())
            .expect("variant present")
            .outcome
    }

    #[test]
    fn runs_one_kernel_with_all_variants() {
        let h = test_harness();
        let spec = &registry()[0];
        let r = h.run_kernel(spec);
        assert_eq!(r.kernel, spec.name);
        assert_eq!(r.variants.len(), 5);
        assert!(r.variants.iter().all(|v| v.validated));
        assert!(r.variants.iter().all(|v| v.is_ok()));
        assert!(r.measured_gap().unwrap() > 0.0);
    }

    #[test]
    fn subset_run_filters_by_name() {
        let h = test_harness();
        let r = h.run_kernels(&["nbody", "lbm"]);
        let names: Vec<_> = r.kernels.iter().map(|k| k.kernel.as_str()).collect();
        assert_eq!(names, ["nbody", "lbm"]);
    }

    #[test]
    fn checksums_are_consistent_across_variants() {
        let h = test_harness();
        let r = h.run_kernel(&registry()[2]); // conv1d
        let naive = r.variants[0].checksum;
        for v in &r.variants {
            let rel = (v.checksum - naive).abs() / naive.abs().max(1.0);
            assert!(rel < 1e-2, "{}: {} vs {}", v.variant, v.checksum, naive);
        }
    }

    #[test]
    fn skip_validation_still_measures() {
        let h = Harness::new()
            .size(ProblemSize::Test)
            .threads(1)
            .repetitions(1)
            .skip_validation();
        let r = h.run_kernel(&registry()[3]); // blackscholes
        assert!(r.variants.iter().all(|v| !v.validated));
        assert!(r.variants.iter().all(|v| v.timing.is_some()));
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_rejected() {
        let _ = Harness::new().repetitions(0);
    }

    #[test]
    fn chaos_panic_is_isolated_and_named() {
        // Victim = simd (seed 2); the other four variants still measure.
        let h = test_harness().seed(2);
        let r = h.run_kernel(&chaos::spec(FailureMode::Panic));
        match outcome_of(&r, Variant::Simd) {
            VariantOutcome::Panicked { message } => {
                assert!(message.contains("injected panic"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        for v in [
            Variant::Naive,
            Variant::Parallel,
            Variant::Algorithmic,
            Variant::Ninja,
        ] {
            assert!(outcome_of(&r, v).is_ok(), "{v} should have measured");
        }
    }

    #[test]
    fn chaos_wrong_output_records_validation_failure() {
        let h = test_harness().seed(4);
        let r = h.run_kernel(&chaos::spec(FailureMode::WrongOutput));
        match outcome_of(&r, Variant::Ninja) {
            VariantOutcome::ValidationFailed { reason } => {
                assert!(reason.contains("injected corruption"), "{reason}");
            }
            other => panic!("expected ValidationFailed, got {other:?}"),
        }
        assert_eq!(r.failures().count(), 1);
    }

    #[test]
    fn chaos_nan_records_non_finite() {
        let h = test_harness().seed(0);
        let r = h.run_kernel(&chaos::spec(FailureMode::NonFinite));
        assert_eq!(*outcome_of(&r, Variant::Naive), VariantOutcome::NonFinite);
        // The naive failure must not poison the other variants.
        assert_eq!(r.failures().count(), 1);
    }

    #[test]
    fn chaos_hang_times_out_and_pool_recovers() {
        let h = test_harness().timeout(Duration::from_millis(200)).seed(1);
        let r = h.run_kernel(&chaos::spec(FailureMode::Hang));
        match outcome_of(&r, Variant::Parallel) {
            VariantOutcome::TimedOut { budget_s } => {
                assert!((*budget_s - 0.2).abs() < 1e-9);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        // Variants after the hang still measure on the rebuilt pool.
        for v in [Variant::Simd, Variant::Algorithmic, Variant::Ninja] {
            assert!(outcome_of(&r, v).is_ok(), "{v} should have measured");
        }
        // And a real kernel still runs end-to-end afterwards.
        let real = h.run_kernel(&registry()[0]);
        assert!(real.variants.iter().all(|v| v.is_ok()));
    }

    #[test]
    fn suite_completes_with_chaos_injected() {
        let h = test_harness().timeout(Duration::from_millis(200)).seed(0);
        let mut specs = vec![chaos::spec(FailureMode::Panic)];
        specs.extend(registry().into_iter().take(2));
        let r = h.run_specs(&specs);
        assert_eq!(r.kernels.len(), 3);
        assert!(r.has_failures());
        // Both real kernels after the chaos one measured cleanly.
        for k in &r.kernels[1..] {
            assert!(k.failures().next().is_none(), "{} had failures", k.kernel);
        }
    }

    #[test]
    fn fail_fast_stops_after_first_failure() {
        let h = test_harness().fail_fast(true).seed(0);
        let mut specs = vec![chaos::spec(FailureMode::WrongOutput)];
        specs.extend(registry().into_iter().take(2));
        let r = h.run_specs(&specs);
        // The chaos kernel stops mid-ladder and no further kernel runs.
        assert_eq!(r.kernels.len(), 1);
        assert_eq!(r.kernels[0].variants.len(), 1);
        assert!(!r.kernels[0].variants[0].is_ok());
    }

    #[test]
    fn measured_cells_carry_attribution() {
        let h = test_harness();
        let r = h.run_kernel(&registry()[0]);
        for v in &r.variants {
            let a = v.attribution.as_ref().expect("measured cell attributed");
            assert!(a.achieved_gflops > 0.0, "{}: {a:?}", v.variant);
            assert!(a.roofline_pct > 0.0, "{}: {a:?}", v.variant);
            assert!(!a.bound.is_empty());
            // Probe metrics are off, so no pool window was recorded.
            assert!(!a.has_pool_data(), "{}: {a:?}", v.variant);
        }
    }

    #[test]
    fn metrics_flag_adds_pool_attribution_and_raw_samples() {
        ninja_probe::set_metrics(true);
        let h = test_harness();
        let r = h.run_kernel(&registry()[0]);
        ninja_probe::set_metrics(false);
        let par = r
            .variants
            .iter()
            .find(|x| x.variant == Variant::Parallel.name())
            .expect("parallel variant present");
        let a = par.attribution.as_ref().expect("attributed");
        assert!(a.has_pool_data(), "pool window should be recorded: {a:?}");
        assert!(a.pool_idle_pct >= 0.0 && a.pool_idle_pct <= 100.0);
        let t = par.timing.as_ref().expect("measured");
        assert_eq!(
            t.samples.len(),
            t.runs as usize,
            "metrics flag opts into raw per-rep samples"
        );
    }

    /// Serializes the tests that toggle the global counters flag or the
    /// force-unavailable env var (the test harness runs tests in threads).
    static COUNTER_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_flag_attaches_measured_attribution_or_degrades_cleanly() {
        let _guard = COUNTER_TEST_LOCK.lock();
        ninja_probe::set_counters(true);
        let h = test_harness();
        let r = h.run_kernel(&registry()[3]); // blackscholes
        ninja_probe::set_counters(false);
        // Counter trouble must never fail a measurement.
        assert!(r.variants.iter().all(|v| v.is_ok()));
        let available = ninja_probe::counters::availability().is_available();
        for v in &r.variants {
            let a = v.attribution.as_ref().expect("attributed");
            if available {
                assert!(a.has_counter_data(), "{}: {a:?}", v.variant);
                assert!(a.measured_ipc.expect("ipc measured") > 0.0);
                assert!(a.measured_bound.is_some());
                assert!(a.agreement.is_some());
            } else {
                // Degradation contract: unchanged analytical attribution,
                // no fabricated measured fields.
                assert!(!a.has_counter_data(), "{}: {a:?}", v.variant);
                assert!(a.roofline_pct > 0.0);
            }
        }
    }

    #[test]
    fn forced_unavailable_counters_never_fail_measurement() {
        let _guard = COUNTER_TEST_LOCK.lock();
        std::env::set_var(ninja_probe::counters::FORCE_UNAVAILABLE_ENV, "1");
        ninja_probe::set_counters(true);
        let h = test_harness();
        let r = h.run_kernel(&registry()[0]);
        ninja_probe::set_counters(false);
        std::env::remove_var(ninja_probe::counters::FORCE_UNAVAILABLE_ENV);
        assert!(r.variants.iter().all(|v| v.is_ok()));
        for v in &r.variants {
            let a = v.attribution.as_ref().expect("attributed");
            assert!(!a.has_counter_data(), "{}: {a:?}", v.variant);
            assert_eq!(a.agreement, None);
        }
    }

    #[test]
    fn affinity_harness_measures_and_exposes_pool_metrics() {
        let h = test_harness().affinity(true);
        let r = h.run_kernel(&registry()[3]); // blackscholes
        assert!(r.variants.iter().all(|v| v.is_ok()));
        // Metrics flag is off here, so counters are zero — but the
        // snapshot's shape tracks the configured pool.
        let m = h.pool_metrics();
        assert_eq!(m.threads, h.num_threads());
        assert_eq!(m.workers.len(), h.num_threads());
    }

    #[test]
    fn explicit_attribution_machine_survives_thread_changes() {
        let h = Harness::new()
            .attribution_machine(ninja_model::machines::westmere())
            .threads(2);
        assert_eq!(h.machine().name, "Core i7 X980 (Westmere)");
        // Without an explicit machine the nominal host tracks threads.
        let h = Harness::new().threads(3);
        assert_eq!(h.machine().cores, 3);
        assert_eq!(h.machine().year, 0, "nominal host is marked synthetic");
    }

    #[test]
    fn timeout_on_healthy_kernel_changes_nothing() {
        let h = test_harness().timeout(Duration::from_secs(120));
        let r = h.run_kernel(&registry()[3]); // blackscholes
        assert!(r.variants.iter().all(|v| v.is_ok()));
        assert!(r.measured_gap().is_some());
    }
}
