//! The measurement driver: runs (kernel × variant) pairs with validation.

use crate::measure::measure;
use crate::report::{KernelReport, SuiteReport, VariantResult};
use ninja_kernels::{registry, KernelSpec, ProblemSize, Variant};
use ninja_parallel::ThreadPool;

/// Configures and runs Ninja-gap measurements.
///
/// Non-consuming builder: configure with [`size`](Harness::size),
/// [`seed`](Harness::seed), [`repetitions`](Harness::repetitions),
/// [`threads`](Harness::threads), then call
/// [`run_suite`](Harness::run_suite) or [`run_kernel`](Harness::run_kernel).
#[derive(Debug)]
pub struct Harness {
    size: ProblemSize,
    seed: u64,
    warmup: u32,
    runs: u32,
    pool: ThreadPool,
    validate: bool,
}

impl Harness {
    /// Creates a harness with default settings: `Quick` size, seed 42, one
    /// warmup plus three timed runs, a hardware-sized pool, validation on.
    pub fn new() -> Self {
        Self {
            size: ProblemSize::Quick,
            seed: 42,
            warmup: 1,
            runs: 3,
            pool: ThreadPool::new(),
            validate: true,
        }
    }

    /// Sets the problem-size preset.
    pub fn size(mut self, size: ProblemSize) -> Self {
        self.size = size;
        self
    }

    /// Sets the input-generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of timed repetitions (median is reported).
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn repetitions(mut self, runs: u32) -> Self {
        assert!(runs > 0, "need at least one repetition");
        self.runs = runs;
        self
    }

    /// Sets the number of pool threads used by parallel variants.
    pub fn threads(mut self, n: usize) -> Self {
        self.pool = ThreadPool::with_threads(n);
        self
    }

    /// Disables output validation (measurement only). Validation is on by
    /// default and strongly recommended.
    pub fn skip_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Number of threads parallel variants will use.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Runs every variant of one kernel.
    ///
    /// # Panics
    ///
    /// Panics if validation is enabled and a variant's output disagrees
    /// with the reference implementation — a wrong answer makes every
    /// timing meaningless.
    pub fn run_kernel(&self, spec: &KernelSpec) -> KernelReport {
        let mut instance = (spec.make)(self.size, self.seed);
        let work = instance.work();
        let mut variants = Vec::with_capacity(Variant::ALL.len());
        for v in Variant::ALL {
            if self.validate {
                if let Err(e) = instance.validate(v, &self.pool) {
                    panic!("{e}");
                }
            }
            let mut checksum = 0.0;
            let timing = measure(self.warmup, self.runs, || {
                checksum = instance.run(v, &self.pool);
            });
            variants.push(VariantResult {
                variant: v.name().to_owned(),
                timing,
                checksum,
                gflops: work.flops / timing.median_s / 1e9,
                gbs: work.bytes / timing.median_s / 1e9,
                validated: self.validate,
            });
        }
        KernelReport {
            kernel: spec.name.to_owned(),
            bound: spec.bound.to_owned(),
            variants,
        }
    }

    /// Runs the full ten-kernel suite.
    pub fn run_suite(&self) -> SuiteReport {
        let mut report = SuiteReport::new_empty(self.size, self.seed, self.pool.num_threads());
        for spec in registry() {
            report.kernels.push(self.run_kernel(&spec));
        }
        report
    }

    /// Runs a named subset of the suite (names as in the registry).
    pub fn run_kernels(&self, names: &[&str]) -> SuiteReport {
        let mut report = SuiteReport::new_empty(self.size, self.seed, self.pool.num_threads());
        for spec in registry() {
            if names.contains(&spec.name) {
                report.kernels.push(self.run_kernel(&spec));
            }
        }
        report
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_harness() -> Harness {
        Harness::new().size(ProblemSize::Test).threads(2).repetitions(1)
    }

    #[test]
    fn runs_one_kernel_with_all_variants() {
        let h = test_harness();
        let spec = &registry()[0];
        let r = h.run_kernel(spec);
        assert_eq!(r.kernel, spec.name);
        assert_eq!(r.variants.len(), 5);
        assert!(r.variants.iter().all(|v| v.validated));
        assert!(r.measured_gap().unwrap() > 0.0);
    }

    #[test]
    fn subset_run_filters_by_name() {
        let h = test_harness();
        let r = h.run_kernels(&["nbody", "lbm"]);
        let names: Vec<_> = r.kernels.iter().map(|k| k.kernel.as_str()).collect();
        assert_eq!(names, ["nbody", "lbm"]);
    }

    #[test]
    fn checksums_are_consistent_across_variants() {
        let h = test_harness();
        let r = h.run_kernel(&registry()[2]); // conv1d
        let naive = r.variants[0].checksum;
        for v in &r.variants {
            let rel = (v.checksum - naive).abs() / naive.abs().max(1.0);
            assert!(rel < 1e-2, "{}: {} vs {}", v.variant, v.checksum, naive);
        }
    }

    #[test]
    fn skip_validation_still_measures() {
        let h = Harness::new()
            .size(ProblemSize::Test)
            .threads(1)
            .repetitions(1)
            .skip_validation();
        let r = h.run_kernel(&registry()[3]); // blackscholes
        assert!(r.variants.iter().all(|v| !v.validated));
        assert!(r.variants.iter().all(|v| v.timing.median_s > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_rejected() {
        let _ = Harness::new().repetitions(0);
    }
}
