//! Result structures for suite runs (serializable for EXPERIMENTS.md and
//! machine-readable output).

use crate::Measurement;
use ninja_kernels::{ProblemSize, Variant};
use serde::{Deserialize, Serialize};

/// One measured (kernel, variant) cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VariantResult {
    /// Variant label (see [`Variant::name`]).
    pub variant: String,
    /// Timing of the variant.
    pub timing: Measurement,
    /// Output checksum (anti-DCE witness; equal-ish across variants).
    pub checksum: f64,
    /// Achieved useful GFLOP/s.
    pub gflops: f64,
    /// Achieved streaming GB/s.
    pub gbs: f64,
    /// Whether the output matched the reference implementation.
    pub validated: bool,
}

/// All variants of one kernel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name.
    pub kernel: String,
    /// Compute- or memory-bound classification from the suite table.
    pub bound: String,
    /// Per-variant results in ladder order.
    pub variants: Vec<VariantResult>,
}

impl KernelReport {
    fn time_of(&self, v: Variant) -> Option<f64> {
        self.variants
            .iter()
            .find(|r| r.variant == v.name())
            .map(|r| r.timing.median_s)
    }

    /// Measured Ninja gap on this host: `time(Naive) / time(Ninja)`.
    ///
    /// On a single-core host this captures the SIMD and algorithmic axes
    /// only; the thread axis is projected by `ninja-model`.
    pub fn measured_gap(&self) -> Option<f64> {
        Some(self.time_of(Variant::Naive)? / self.time_of(Variant::Ninja)?)
    }

    /// Measured residual: `time(Algorithmic) / time(Ninja)`.
    pub fn measured_residual(&self) -> Option<f64> {
        Some(self.time_of(Variant::Algorithmic)? / self.time_of(Variant::Ninja)?)
    }

    /// Measured speedup of any variant over naive.
    pub fn speedup_over_naive(&self, v: Variant) -> Option<f64> {
        Some(self.time_of(Variant::Naive)? / self.time_of(v)?)
    }
}

/// A full suite run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Problem-size preset used.
    pub size: String,
    /// RNG seed used for input generation.
    pub seed: u64,
    /// Threads in the measurement pool.
    pub threads: usize,
    /// Active SIMD backend (from `ninja_simd::backend_name`).
    pub simd_backend: String,
    /// Per-kernel reports in suite order.
    pub kernels: Vec<KernelReport>,
}

impl SuiteReport {
    /// Geometric-mean measured Ninja gap across kernels.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty.
    pub fn average_gap(&self) -> f64 {
        let gaps: Vec<f64> = self.kernels.iter().filter_map(KernelReport::measured_gap).collect();
        ninja_model::geomean(&gaps)
    }

    /// Geometric-mean measured residual (`Algorithmic / Ninja`).
    ///
    /// # Panics
    ///
    /// Panics if the report is empty.
    pub fn average_residual(&self) -> f64 {
        let rs: Vec<f64> =
            self.kernels.iter().filter_map(KernelReport::measured_residual).collect();
        ninja_model::geomean(&rs)
    }

    /// Looks up one kernel's report by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelReport> {
        self.kernels.iter().find(|k| k.kernel == name)
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("suite reports are serializable")
    }

    /// Renders the report as CSV (`kernel,variant,median_s,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kernel,variant,median_s,min_s,gflops,gbs,validated\n");
        for k in &self.kernels {
            for v in &k.variants {
                out.push_str(&format!(
                    "{},{},{:.6e},{:.6e},{:.3},{:.3},{}\n",
                    k.kernel, v.variant, v.timing.median_s, v.timing.min_s, v.gflops, v.gbs, v.validated
                ));
            }
        }
        out
    }

    /// Parses a previously serialized report.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Renders a side-by-side comparison against `baseline`: the ratio
    /// `baseline_time / self_time` per (kernel, variant) — values above 1
    /// mean this report is faster. Kernels/variants missing from either
    /// report are skipped.
    ///
    /// Useful for regression tracking across commits or comparing two
    /// machines' suite runs.
    pub fn compare(&self, baseline: &SuiteReport) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "comparison: {} ({} thr) vs baseline {} ({} thr)\n",
            self.size, self.threads, baseline.size, baseline.threads
        ));
        out.push_str(&format!(
            "{:<16} {:<12} {:>10} {:>10} {:>8}\n",
            "kernel", "variant", "self s", "base s", "speedup"
        ));
        for k in &self.kernels {
            let Some(bk) = baseline.kernel(&k.kernel) else { continue };
            for v in &k.variants {
                let Some(bv) = bk.variants.iter().find(|b| b.variant == v.variant) else {
                    continue;
                };
                out.push_str(&format!(
                    "{:<16} {:<12} {:>10.4} {:>10.4} {:>7.2}X\n",
                    k.kernel,
                    v.variant,
                    v.timing.median_s,
                    bv.timing.median_s,
                    bv.timing.median_s / v.timing.median_s
                ));
            }
        }
        out
    }

    /// Helper for constructing a report header.
    pub(crate) fn new_empty(size: ProblemSize, seed: u64, threads: usize) -> Self {
        Self {
            size: size.name().to_owned(),
            seed,
            threads,
            simd_backend: ninja_simd::backend_name().to_owned(),
            kernels: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> SuiteReport {
        let timing = |s: f64| Measurement { median_s: s, mean_s: s, stddev_s: 0.0, min_s: s, max_s: s, runs: 1 };
        let vr = |name: &str, s: f64| VariantResult {
            variant: name.into(),
            timing: timing(s),
            checksum: 1.0,
            gflops: 1.0,
            gbs: 1.0,
            validated: true,
        };
        SuiteReport {
            size: "test".into(),
            seed: 1,
            threads: 1,
            simd_backend: "x".into(),
            kernels: vec![KernelReport {
                kernel: "k".into(),
                bound: "compute".into(),
                variants: vec![
                    vr("naive", 8.0),
                    vr("parallel", 4.0),
                    vr("simd", 2.0),
                    vr("algorithmic", 1.3),
                    vr("ninja", 1.0),
                ],
            }],
        }
    }

    #[test]
    fn gap_and_residual_math() {
        let r = dummy_report();
        let k = &r.kernels[0];
        assert_eq!(k.measured_gap(), Some(8.0));
        assert_eq!(k.measured_residual(), Some(1.3));
        assert_eq!(k.speedup_over_naive(Variant::Simd), Some(4.0));
        assert!((r.average_gap() - 8.0).abs() < 1e-12);
        assert!((r.average_residual() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let r = dummy_report();
        let back = SuiteReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = dummy_report().to_csv();
        assert!(csv.starts_with("kernel,variant"));
        assert_eq!(csv.lines().count(), 1 + 5);
        assert!(csv.contains("k,ninja"));
    }

    #[test]
    fn compare_reports_speedups() {
        let a = dummy_report();
        let mut b = dummy_report();
        for v in &mut b.kernels[0].variants {
            v.timing.median_s *= 2.0;
        }
        let cmp = a.compare(&b);
        assert!(cmp.contains("2.00X"), "{cmp}");
        // Missing kernels are skipped silently.
        let empty = SuiteReport { kernels: Vec::new(), ..dummy_report() };
        let cmp2 = a.compare(&empty);
        assert!(!cmp2.contains("naive"));
    }

    #[test]
    fn kernel_lookup() {
        let r = dummy_report();
        assert!(r.kernel("k").is_some());
        assert!(r.kernel("missing").is_none());
    }
}
