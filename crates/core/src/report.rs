//! Result structures for suite runs (serializable for EXPERIMENTS.md and
//! machine-readable output).

use crate::Measurement;
use ninja_kernels::{ProblemSize, Variant};
use serde::{Deserialize, Serialize};

/// How one (kernel, variant) measurement ended.
///
/// The harness records an outcome for every variant instead of panicking,
/// so a single bad variant cannot take down a suite run: the report keeps
/// the partial results and names what failed and how.
#[derive(Clone, Debug, PartialEq)]
pub enum VariantOutcome {
    /// Measured (and, when validation was enabled, validated) successfully.
    Ok,
    /// The output disagreed with the reference implementation.
    ValidationFailed {
        /// The validator's mismatch description.
        reason: String,
    },
    /// The variant panicked during validation or measurement.
    Panicked {
        /// The original panic payload, stringified.
        message: String,
    },
    /// The variant exceeded its wall-clock budget and was abandoned.
    TimedOut {
        /// The budget that was exceeded, in seconds.
        budget_s: f64,
    },
    /// The checksum came back NaN or infinite, so the timings measure
    /// garbage arithmetic rather than useful work.
    NonFinite,
}

impl VariantOutcome {
    /// Whether the variant produced a trustworthy measurement.
    pub fn is_ok(&self) -> bool {
        matches!(self, VariantOutcome::Ok)
    }

    /// Stable machine-readable tag (used in JSON/CSV).
    pub fn kind(&self) -> &'static str {
        match self {
            VariantOutcome::Ok => "ok",
            VariantOutcome::ValidationFailed { .. } => "validation_failed",
            VariantOutcome::Panicked { .. } => "panicked",
            VariantOutcome::TimedOut { .. } => "timed_out",
            VariantOutcome::NonFinite => "non_finite",
        }
    }
}

impl std::fmt::Display for VariantOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VariantOutcome::Ok => f.write_str("ok"),
            VariantOutcome::ValidationFailed { reason } => {
                write!(f, "validation failed: {reason}")
            }
            VariantOutcome::Panicked { message } => write!(f, "panicked: {message}"),
            VariantOutcome::TimedOut { budget_s } => {
                write!(f, "timed out after {budget_s:.1}s budget")
            }
            VariantOutcome::NonFinite => f.write_str("non-finite checksum"),
        }
    }
}

// The derive stand-in only handles structs, so the enum impls are written
// by hand: a tagged object `{"kind": "...", ...fields}`.
impl Serialize for VariantOutcome {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![(
            "kind".to_string(),
            serde::Value::Str(self.kind().to_string()),
        )];
        match self {
            VariantOutcome::Ok | VariantOutcome::NonFinite => {}
            VariantOutcome::ValidationFailed { reason } => {
                pairs.push(("reason".to_string(), reason.to_value()));
            }
            VariantOutcome::Panicked { message } => {
                pairs.push(("message".to_string(), message.to_value()));
            }
            VariantOutcome::TimedOut { budget_s } => {
                pairs.push(("budget_s".to_string(), budget_s.to_value()));
            }
        }
        serde::Value::Object(pairs)
    }
}

impl Deserialize for VariantOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let kind = String::from_value(v.field("kind")?)?;
        match kind.as_str() {
            "ok" => Ok(VariantOutcome::Ok),
            "validation_failed" => Ok(VariantOutcome::ValidationFailed {
                reason: String::from_value(v.field("reason")?)?,
            }),
            "panicked" => Ok(VariantOutcome::Panicked {
                message: String::from_value(v.field("message")?)?,
            }),
            "timed_out" => Ok(VariantOutcome::TimedOut {
                budget_s: f64::from_value(v.field("budget_s")?)?,
            }),
            "non_finite" => Ok(VariantOutcome::NonFinite),
            other => Err(serde::DeError::new(format!(
                "unknown variant outcome kind `{other}`"
            ))),
        }
    }
}

/// One measured (kernel, variant) cell.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct VariantResult {
    /// Variant label (see [`Variant::name`]).
    pub variant: String,
    /// Timing of the variant; `None` when the variant failed before a
    /// trustworthy measurement existed.
    pub timing: Option<Measurement>,
    /// Output checksum (anti-DCE witness; equal-ish across variants).
    /// Zero when the variant failed or produced a non-finite value.
    pub checksum: f64,
    /// Achieved useful GFLOP/s (zero for failed variants).
    pub gflops: f64,
    /// Achieved streaming GB/s (zero for failed variants).
    pub gbs: f64,
    /// Whether validation against the reference implementation ran.
    pub validated: bool,
    /// How the measurement ended.
    pub outcome: VariantOutcome,
    /// Roofline placement of the measurement (achieved throughputs,
    /// percent-of-roofline, bound classification, pool utilization);
    /// `None` for failed cells.
    pub attribution: Option<ninja_model::Attribution>,
}

// Deserialize is written by hand (Serialize stays derived) so reports
// written before `attribution` existed still parse: the derive stand-in
// errors on any missing field, and older JSON has no `attribution` key.
impl Deserialize for VariantResult {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            variant: String::from_value(v.field("variant")?)?,
            timing: Option::from_value(v.field("timing")?)?,
            checksum: f64::from_value(v.field("checksum")?)?,
            gflops: f64::from_value(v.field("gflops")?)?,
            gbs: f64::from_value(v.field("gbs")?)?,
            validated: bool::from_value(v.field("validated")?)?,
            outcome: VariantOutcome::from_value(v.field("outcome")?)?,
            attribution: match v.field("attribution") {
                Ok(val) => Option::from_value(val)?,
                Err(_) => None,
            },
        })
    }
}

impl VariantResult {
    /// Whether this cell holds a trustworthy measurement.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The median time, if the variant was measured successfully.
    pub fn median_s(&self) -> Option<f64> {
        if self.is_ok() {
            self.timing.as_ref().map(|t| t.median_s)
        } else {
            None
        }
    }

    /// Builds the failure cell recorded for a variant that did not
    /// produce a measurement.
    pub fn failed(variant: Variant, validated: bool, outcome: VariantOutcome) -> Self {
        Self {
            variant: variant.name().to_owned(),
            timing: None,
            checksum: 0.0,
            gflops: 0.0,
            gbs: 0.0,
            validated,
            outcome,
            attribution: None,
        }
    }
}

/// All variants of one kernel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name.
    pub kernel: String,
    /// Compute- or memory-bound classification from the suite table.
    pub bound: String,
    /// Per-variant results in ladder order.
    pub variants: Vec<VariantResult>,
}

impl KernelReport {
    fn time_of(&self, v: Variant) -> Option<f64> {
        self.variants
            .iter()
            .find(|r| r.variant == v.name())
            .and_then(VariantResult::median_s)
    }

    /// Measured Ninja gap on this host: `time(Naive) / time(Ninja)`.
    ///
    /// On a single-core host this captures the SIMD and algorithmic axes
    /// only; the thread axis is projected by `ninja-model`. `None` when
    /// either endpoint failed to measure.
    pub fn measured_gap(&self) -> Option<f64> {
        Some(self.time_of(Variant::Naive)? / self.time_of(Variant::Ninja)?)
    }

    /// Measured residual: `time(Algorithmic) / time(Ninja)`.
    pub fn measured_residual(&self) -> Option<f64> {
        Some(self.time_of(Variant::Algorithmic)? / self.time_of(Variant::Ninja)?)
    }

    /// Measured speedup of any variant over naive.
    pub fn speedup_over_naive(&self, v: Variant) -> Option<f64> {
        Some(self.time_of(Variant::Naive)? / self.time_of(v)?)
    }

    /// Whether this kernel is excluded from suite-level aggregates and
    /// recorded perf history: the test-only `chaos-*` fault-injection
    /// family measures harness behavior, not performance, so its timings
    /// must never contribute to gap/residual averages or the run store.
    pub fn excluded_from_aggregates(&self) -> bool {
        ninja_perfdb::kernel_is_excluded(&self.kernel)
    }

    /// The variants of this kernel that did not measure cleanly.
    pub fn failures(&self) -> impl Iterator<Item = &VariantResult> {
        self.variants.iter().filter(|v| !v.is_ok())
    }
}

/// Assembly-level vectorization evidence for one (kernel, rung) cell, as
/// recorded by the `ninja-lint --asm` oracle. A plain-data mirror of the
/// lint crate's `VecProfile` so `ninja-core` does not depend on the
/// linter; `ninja-bench` converts between the two.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VecProfileRecord {
    /// Kernel module name (file stem under `crates/kernels/src`).
    pub kernel: String,
    /// Rung name (`naive`/`parallel`/`simd`/`algorithmic`/`ninja`).
    pub rung: String,
    /// Widest vector register observed (bits); 0 for scalar code.
    pub width_bits: u32,
    /// Whether fused multiply-add instructions appeared.
    pub fma: bool,
    /// Whether vector gather loads appeared.
    pub gather: bool,
    /// Whether vector scatter stores appeared.
    pub scatter: bool,
    /// Packed floating-point arithmetic instruction count.
    pub vector_fp_ops: u32,
    /// Scalar floating-point arithmetic instruction count.
    pub scalar_fp_ops: u32,
    /// Integer vector arithmetic/shuffle instruction count.
    pub vector_int_ops: u32,
    /// Listing symbols attributed to this rung's entry points.
    pub matched_symbols: u32,
    /// Summary tag: `no-evidence`, `scalar`, `vec64` … `vec512`.
    pub classification: String,
}

/// A full suite run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SuiteReport {
    /// Problem-size preset used.
    pub size: String,
    /// RNG seed used for input generation.
    pub seed: u64,
    /// Threads in the measurement pool.
    pub threads: usize,
    /// Active SIMD backend (from `ninja_simd::backend_name`).
    pub simd_backend: String,
    /// Resolved ISA dispatch backend the ninja rungs ran on (`scalar`,
    /// `sse2`, `avx2`, or `neon`); empty in reports written before the
    /// width-generic dispatcher existed.
    pub isa: String,
    /// Per-kernel reports in suite order.
    pub kernels: Vec<KernelReport>,
    /// Vectorization evidence per (kernel, rung) from the asm oracle;
    /// empty when the run did not collect it.
    pub vec_profiles: Vec<VecProfileRecord>,
}

// Deserialize is written by hand (Serialize stays derived) so reports
// written before `vec_profiles` existed still parse — the same tolerance
// pattern as `VariantResult::attribution` above.
impl Deserialize for SuiteReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            size: String::from_value(v.field("size")?)?,
            seed: u64::from_value(v.field("seed")?)?,
            threads: usize::from_value(v.field("threads")?)?,
            simd_backend: String::from_value(v.field("simd_backend")?)?,
            isa: match v.field("isa") {
                Ok(val) => String::from_value(val)?,
                Err(_) => String::new(),
            },
            kernels: Vec::from_value(v.field("kernels")?)?,
            vec_profiles: match v.field("vec_profiles") {
                Ok(val) => Vec::from_value(val)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

impl SuiteReport {
    /// The kernels that participate in suite-level aggregates: everything
    /// except the test-only `chaos-*` fault-injection family (see
    /// [`KernelReport::excluded_from_aggregates`]).
    pub fn aggregate_kernels(&self) -> impl Iterator<Item = &KernelReport> {
        self.kernels
            .iter()
            .filter(|k| !k.excluded_from_aggregates())
    }

    /// Geometric-mean measured Ninja gap across non-excluded kernels that
    /// measured both endpoints successfully. Injected `chaos-*` kernels
    /// never contribute, so a `--chaos` run reports the same average as a
    /// clean one.
    ///
    /// # Panics
    ///
    /// Panics if no kernel has a measurable gap.
    pub fn average_gap(&self) -> f64 {
        let gaps: Vec<f64> = self
            .aggregate_kernels()
            .filter_map(KernelReport::measured_gap)
            .collect();
        ninja_model::geomean(&gaps)
    }

    /// Geometric-mean measured residual (`Algorithmic / Ninja`) across
    /// non-excluded kernels.
    ///
    /// # Panics
    ///
    /// Panics if no kernel has a measurable residual.
    pub fn average_residual(&self) -> f64 {
        let rs: Vec<f64> = self
            .aggregate_kernels()
            .filter_map(KernelReport::measured_residual)
            .collect();
        ninja_model::geomean(&rs)
    }

    /// Looks up one kernel's report by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelReport> {
        self.kernels.iter().find(|k| k.kernel == name)
    }

    /// Every (kernel, variant) cell that did not measure cleanly.
    pub fn failures(&self) -> Vec<(&str, &VariantResult)> {
        self.kernels
            .iter()
            .flat_map(|k| k.failures().map(move |v| (k.kernel.as_str(), v)))
            .collect()
    }

    /// Whether any variant in the run failed.
    pub fn has_failures(&self) -> bool {
        self.kernels.iter().any(|k| k.failures().next().is_some())
    }

    /// A human-readable list of failures, one per line; empty when the
    /// run was clean.
    pub fn failure_summary(&self) -> String {
        let mut out = String::new();
        for (kernel, v) in self.failures() {
            out.push_str(&format!("{kernel}/{}: {}\n", v.variant, v.outcome));
        }
        out
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("suite reports are serializable")
    }

    /// Renders the report as CSV (`kernel,variant,median_s,...`).
    ///
    /// Failed variants keep their row — empty timing columns, zeroed
    /// rates — with the outcome tag in the last column, so downstream
    /// tooling sees exactly which cells are missing and why. The
    /// `roofline_pct`/`bound` columns carry the roofline attribution
    /// (empty for cells without one).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "kernel,variant,median_s,min_s,gflops,gbs,roofline_pct,bound,validated,outcome\n",
        );
        for k in &self.kernels {
            for v in &k.variants {
                let (median, min) = match &v.timing {
                    Some(t) => (format!("{:.6e}", t.median_s), format!("{:.6e}", t.min_s)),
                    None => (String::new(), String::new()),
                };
                let (roof, bound) = match &v.attribution {
                    Some(a) => (format!("{:.1}", a.roofline_pct), a.bound.clone()),
                    None => (String::new(), String::new()),
                };
                out.push_str(&format!(
                    "{},{},{},{},{:.3},{:.3},{},{},{},{}\n",
                    k.kernel,
                    v.variant,
                    median,
                    min,
                    v.gflops,
                    v.gbs,
                    roof,
                    bound,
                    v.validated,
                    v.outcome.kind()
                ));
            }
        }
        out
    }

    /// Parses a previously serialized report.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Converts the report into a `ninja-perfdb` run record for the
    /// persistent store. `chaos-*` kernels are excluded (and listed in
    /// the record's `excluded` field); failed cells of real kernels keep
    /// their outcome tag with no timing.
    ///
    /// # Panics
    ///
    /// Never panics: suite reports always serialize, and the store's
    /// suite-report ingestion accepts exactly that serialization.
    pub fn to_run_record(&self, meta: &ninja_perfdb::RecordMeta) -> ninja_perfdb::RunRecord {
        ninja_perfdb::RunRecord::from_suite_json(&self.to_json(), meta)
            .expect("a serialized SuiteReport is a valid suite report")
    }

    /// Statistical comparison against `baseline`, delegating to the
    /// `ninja-perfdb` comparator: per (kernel, variant) cell a verdict of
    /// `regressed` / `improved` / `noise` backed by a deterministic
    /// bootstrap confidence interval, with the noise floor defaulting to
    /// each cell's measured [`Measurement::spread`]. Kernels/variants
    /// missing or failed in either report are skipped (counted in the
    /// report's `skipped` list).
    pub fn compare_statistical(
        &self,
        baseline: &SuiteReport,
        cfg: &ninja_perfdb::CompareConfig,
    ) -> ninja_perfdb::ComparisonReport {
        let base = baseline.to_run_record(&ninja_perfdb::RecordMeta::synthetic(
            "baseline",
            &baseline.simd_backend,
        ));
        let cand = self.to_run_record(&ninja_perfdb::RecordMeta::synthetic(
            "self",
            &self.simd_backend,
        ));
        ninja_perfdb::compare_records(&base, &cand, cfg)
    }

    /// Renders a side-by-side comparison against `baseline` with one
    /// statistical verdict per (kernel, variant) — `regressed`,
    /// `improved`, or `noise` — instead of the naive time ratio this
    /// method used to print (a bare ratio cannot distinguish a real
    /// regression from scheduler noise). The speedup column reads
    /// `baseline_time / self_time`: values above 1 mean this report is
    /// faster. Kernels/variants missing or failed in either report are
    /// skipped.
    ///
    /// Useful for regression tracking across commits or comparing two
    /// machines' suite runs; for history-backed gating use the `perfdb`
    /// binary or `reproduce --baseline`.
    pub fn compare(&self, baseline: &SuiteReport) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "comparison: {} ({} thr) vs baseline {} ({} thr)\n",
            self.size, self.threads, baseline.size, baseline.threads
        ));
        out.push_str(
            &self
                .compare_statistical(baseline, &ninja_perfdb::CompareConfig::default())
                .render_text(),
        );
        out
    }

    /// Helper for constructing a report header.
    pub(crate) fn new_empty(size: ProblemSize, seed: u64, threads: usize) -> Self {
        Self {
            size: size.name().to_owned(),
            seed,
            threads,
            simd_backend: ninja_simd::backend_name().to_owned(),
            isa: ninja_simd::isa::active().name().to_owned(),
            kernels: Vec::new(),
            vec_profiles: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> SuiteReport {
        let timing = |s: f64| Measurement {
            median_s: s,
            mean_s: s,
            stddev_s: 0.0,
            min_s: s,
            max_s: s,
            runs: 1,
            samples: Vec::new(),
        };
        let vr = |name: &str, s: f64| VariantResult {
            variant: name.into(),
            timing: Some(timing(s)),
            checksum: 1.0,
            gflops: 1.0,
            gbs: 1.0,
            validated: true,
            outcome: VariantOutcome::Ok,
            attribution: None,
        };
        SuiteReport {
            size: "test".into(),
            seed: 1,
            threads: 1,
            simd_backend: "x".into(),
            isa: "sse2".into(),
            kernels: vec![KernelReport {
                kernel: "k".into(),
                bound: "compute".into(),
                variants: vec![
                    vr("naive", 8.0),
                    vr("parallel", 4.0),
                    vr("simd", 2.0),
                    vr("algorithmic", 1.3),
                    vr("ninja", 1.0),
                ],
            }],
            vec_profiles: Vec::new(),
        }
    }

    fn all_outcomes() -> Vec<VariantOutcome> {
        vec![
            VariantOutcome::Ok,
            VariantOutcome::ValidationFailed {
                reason: "rel err 0.5 at [3]".into(),
            },
            VariantOutcome::Panicked {
                message: "index out of bounds".into(),
            },
            VariantOutcome::TimedOut { budget_s: 2.5 },
            VariantOutcome::NonFinite,
        ]
    }

    #[test]
    fn gap_and_residual_math() {
        let r = dummy_report();
        let k = &r.kernels[0];
        assert_eq!(k.measured_gap(), Some(8.0));
        assert_eq!(k.measured_residual(), Some(1.3));
        assert_eq!(k.speedup_over_naive(Variant::Simd), Some(4.0));
        assert!((r.average_gap() - 8.0).abs() < 1e-12);
        assert!((r.average_residual() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let r = dummy_report();
        let back = SuiteReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn json_roundtrip_with_failures() {
        let mut r = dummy_report();
        for (v, (slot, outcome)) in r.kernels[0]
            .variants
            .iter_mut()
            .zip(Variant::ALL.into_iter().zip(all_outcomes()))
        {
            if !outcome.is_ok() {
                *v = VariantResult::failed(slot, true, outcome);
            }
        }
        assert_eq!(r.failures().len(), 4);
        let back = SuiteReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn outcome_kind_and_display() {
        let kinds: Vec<&str> = all_outcomes().iter().map(VariantOutcome::kind).collect();
        assert_eq!(
            kinds,
            [
                "ok",
                "validation_failed",
                "panicked",
                "timed_out",
                "non_finite"
            ]
        );
        let shown = format!(
            "{}",
            VariantOutcome::Panicked {
                message: "boom".into()
            }
        );
        assert_eq!(shown, "panicked: boom");
    }

    #[test]
    fn failed_variants_drop_out_of_gap_math() {
        let mut r = dummy_report();
        r.kernels[0].variants[4] = VariantResult::failed(
            Variant::Ninja,
            true,
            VariantOutcome::Panicked {
                message: "boom".into(),
            },
        );
        let k = &r.kernels[0];
        assert_eq!(k.measured_gap(), None);
        assert_eq!(k.measured_residual(), None);
        // Naive/Simd still measure.
        assert_eq!(k.speedup_over_naive(Variant::Simd), Some(4.0));
        assert_eq!(k.failures().count(), 1);
        assert!(r.has_failures());
        let fails = r.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].0, "k");
        assert_eq!(fails[0].1.variant, "ninja");
        assert!(r.failure_summary().contains("k/ninja: panicked: boom"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = dummy_report().to_csv();
        assert!(csv.starts_with("kernel,variant"));
        assert!(csv.lines().next().unwrap().ends_with("outcome"));
        assert_eq!(csv.lines().count(), 1 + 5);
        assert!(csv.contains("k,ninja"));
        assert!(csv.contains(",ok"));
    }

    #[test]
    fn csv_keeps_rows_for_failures() {
        let mut r = dummy_report();
        r.kernels[0].variants[2] = VariantResult::failed(
            Variant::Simd,
            true,
            VariantOutcome::TimedOut { budget_s: 1.0 },
        );
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + 5);
        let simd_row = csv.lines().find(|l| l.contains(",simd,")).unwrap();
        assert!(simd_row.ends_with("timed_out"), "{simd_row}");
        assert!(
            simd_row.contains(",,"),
            "timing columns should be empty: {simd_row}"
        );
    }

    #[test]
    fn compare_reports_speedups_with_verdicts() {
        let a = dummy_report();
        let mut b = dummy_report();
        for v in &mut b.kernels[0].variants {
            if let Some(t) = &mut v.timing {
                t.median_s *= 2.0;
                t.min_s *= 2.0;
                t.max_s *= 2.0;
            }
        }
        // Baseline is uniformly 2x slower: every cell improved.
        let cmp = a.compare(&b);
        assert!(cmp.contains("2.00X"), "{cmp}");
        assert!(cmp.contains("improved"), "{cmp}");
        assert!(!cmp.contains("regressed,"), "{cmp}");
        let verdicts = a.compare_statistical(&b, &ninja_perfdb::CompareConfig::default());
        assert!(verdicts
            .cells
            .iter()
            .all(|c| c.verdict == ninja_perfdb::Verdict::Improved));
        assert!(!verdicts.has_regressions());
        // The reverse direction is a confirmed regression.
        let reverse = b.compare_statistical(&a, &ninja_perfdb::CompareConfig::default());
        assert!(reverse.has_regressions());
        // Missing kernels are skipped silently.
        let empty = SuiteReport {
            kernels: Vec::new(),
            ..dummy_report()
        };
        let cmp2 = a.compare(&empty);
        assert!(!cmp2.contains("naive"));
        // Failed variants are skipped too.
        let mut c = dummy_report();
        c.kernels[0].variants[0] =
            VariantResult::failed(Variant::Naive, true, VariantOutcome::NonFinite);
        let cmp3 = a.compare(&c);
        assert!(!cmp3.contains("naive"));
        assert!(cmp3.contains("parallel"));
    }

    #[test]
    fn self_comparison_is_all_noise() {
        let a = dummy_report();
        let r = a.compare_statistical(&a, &ninja_perfdb::CompareConfig::default());
        assert_eq!(r.cells.len(), 5);
        assert!(r
            .cells
            .iter()
            .all(|c| c.verdict == ninja_perfdb::Verdict::Noise));
        assert_eq!(r.overall(), ninja_perfdb::Verdict::Noise);
        assert!(a.compare(&a).contains("noise"));
    }

    fn with_chaos_kernel(mut r: SuiteReport) -> SuiteReport {
        let mut chaos = r.kernels[0].clone();
        chaos.kernel = "chaos-panic".into();
        // Absurd timings that would wreck the averages if counted.
        for v in &mut chaos.variants {
            if let Some(t) = &mut v.timing {
                t.median_s *= 1000.0;
            }
        }
        // Make the chaos ladder flat so its gap would be 1.0.
        let naive = chaos.variants[0].timing.clone();
        for v in &mut chaos.variants {
            v.timing = naive.clone();
        }
        r.kernels.push(chaos);
        r
    }

    #[test]
    fn chaos_kernels_are_excluded_from_aggregates() {
        let clean = dummy_report();
        let with_chaos = with_chaos_kernel(dummy_report());
        assert!(with_chaos.kernels[1].excluded_from_aggregates());
        assert!(!with_chaos.kernels[0].excluded_from_aggregates());
        // The chaos ladder (gap 1.0) would drag the geomean to sqrt(8);
        // exclusion keeps both aggregates identical to the clean run.
        assert!((with_chaos.average_gap() - clean.average_gap()).abs() < 1e-12);
        assert!((with_chaos.average_residual() - clean.average_residual()).abs() < 1e-12);
        assert_eq!(with_chaos.aggregate_kernels().count(), 1);
    }

    #[test]
    fn run_records_exclude_chaos_kernels() {
        let r = with_chaos_kernel(dummy_report());
        let meta = ninja_perfdb::RecordMeta::synthetic("test-run", &r.simd_backend);
        let rec = r.to_run_record(&meta);
        assert_eq!(rec.id, "test-run");
        assert_eq!(rec.excluded, ["chaos-panic"]);
        assert_eq!(rec.kernels(), ["k"]);
        assert_eq!(rec.cells.len(), 5);
        assert_eq!(rec.size, r.size);
        assert_eq!(rec.seed, r.seed);
        assert_eq!(rec.machine.simd_backend, r.simd_backend);
        assert!((rec.measured_gap("k").unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn vec_profiles_roundtrip_and_tolerate_old_reports() {
        let mut r = dummy_report();
        r.vec_profiles.push(VecProfileRecord {
            kernel: "k".into(),
            rung: "ninja".into(),
            width_bits: 256,
            fma: true,
            gather: false,
            scatter: false,
            vector_fp_ops: 40,
            scalar_fp_ops: 2,
            vector_int_ops: 3,
            matched_symbols: 1,
            classification: "vec256".into(),
        });
        let back = SuiteReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
        // A report serialized before the field existed still parses: rename
        // the key so the lookup misses (extra keys are ignored).
        let legacy = dummy_report()
            .to_json()
            .replace("vec_profiles", "not_a_known_field");
        let old = SuiteReport::from_json(&legacy).unwrap();
        assert!(old.vec_profiles.is_empty());
    }

    #[test]
    fn isa_field_roundtrips_and_tolerates_old_reports() {
        let r = dummy_report();
        assert!(r.to_json().contains("\"isa\": \"sse2\""));
        let back = SuiteReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.isa, "sse2");
        // A report serialized before the dispatcher existed still parses,
        // with an empty backend name.
        let legacy = r.to_json().replace("\"isa\"", "\"not_a_known_field\"");
        let old = SuiteReport::from_json(&legacy).unwrap();
        assert!(old.isa.is_empty());
        assert_eq!(old.kernels, r.kernels);
    }

    #[test]
    fn kernel_lookup() {
        let r = dummy_report();
        assert!(r.kernel("k").is_some());
        assert!(r.kernel("missing").is_none());
    }
}
