//! Thread/size scaling sweeps: `ninja-scale`.
//!
//! The single-point suite run answers "how big is the gap *here*"; this
//! module answers the paper's sharper question — "what happens to each
//! rung as cores are added". A [`SweepConfig`] runs every kernel×variant
//! cell across a grid of thread counts and problem sizes, re-using the
//! fault-tolerant measurement machinery (each grid point is a full
//! [`Harness`] run, so panics/timeouts/validation failures are recorded
//! per cell, never fatal). The resulting [`SweepReport`] turns each
//! curve into explanations via the `ninja_model::scaling` fitters:
//! Amdahl serial fraction, USL contention/coherency, an r², and the
//! empirical scaling knee, cross-checked against the roofline `bound`
//! classification (bandwidth-bound cells are expected to knee earlier).

use crate::measure::Measurement;
use crate::render;
use crate::report::VariantOutcome;
use crate::Harness;
use ninja_kernels::{registry, KernelSpec, ProblemSize};
use ninja_model::scaling::{detect_knee, fit_scaling, DEFAULT_KNEE_THRESHOLD};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Grid description for one sweep: which sizes, which thread counts,
/// and how each grid point is measured.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Problem sizes to sweep (outer grid axis).
    pub sizes: Vec<ProblemSize>,
    /// Thread counts to sweep (inner grid axis), e.g. from
    /// [`thread_grid`].
    pub threads: Vec<usize>,
    /// Input-generation seed, shared by every grid point so all points
    /// measure the same problem.
    pub seed: u64,
    /// Timed repetitions per cell (median is kept).
    pub reps: u32,
    /// Optional per-variant watchdog budget (see [`Harness::timeout`]).
    pub timeout: Option<Duration>,
    /// When set, only registry kernels with these names are swept.
    pub kernels: Option<Vec<String>>,
    /// Marginal-speedup threshold for knee detection
    /// ([`DEFAULT_KNEE_THRESHOLD`] by default).
    pub knee_threshold: f64,
}

impl Default for SweepConfig {
    /// Quick-size sweep over [`thread_grid`] up to the hardware thread
    /// count, seed 42, one repetition per cell, no watchdog, all
    /// kernels.
    fn default() -> Self {
        Self {
            sizes: vec![ProblemSize::Quick],
            threads: thread_grid(ninja_parallel::hardware_threads()),
            seed: 42,
            reps: 1,
            timeout: None,
            kernels: None,
            knee_threshold: DEFAULT_KNEE_THRESHOLD,
        }
    }
}

/// Thread counts for a sweep up to `max`: every count for small
/// machines (`max <= 8`), otherwise 1, 2, 4, … powers of two plus `max`
/// itself, so the grid stays readable on many-core hosts.
pub fn thread_grid(max: usize) -> Vec<usize> {
    let max = max.max(1);
    if max <= 8 {
        return (1..=max).collect();
    }
    let mut grid: Vec<usize> = std::iter::successors(Some(1usize), |n| n.checked_mul(2))
        .take_while(|&n| n < max)
        .collect();
    grid.push(max);
    grid
}

impl SweepConfig {
    /// Runs the full grid. Each (size, threads) point is one
    /// fault-tolerant [`Harness`] run over the selected kernels; every
    /// cell lands in the report whether it measured or failed. Fits are
    /// computed once all points are in.
    pub fn run(&self) -> SweepReport {
        let _sweep_span = ninja_probe::span("sweep");
        let specs: Vec<KernelSpec> = registry()
            .into_iter()
            .filter(|s| match &self.kernels {
                Some(names) => names.iter().any(|n| n == s.name),
                None => true,
            })
            .collect();
        let mut report = SweepReport {
            seed: self.seed,
            reps: self.reps,
            simd_backend: ninja_simd::backend_name().to_owned(),
            sizes: self.sizes.iter().map(|s| s.name().to_owned()).collect(),
            threads: self.threads.clone(),
            knee_threshold: self.knee_threshold,
            cells: Vec::new(),
            fits: Vec::new(),
        };
        for &size in &self.sizes {
            for &threads in &self.threads {
                let _point_span = ninja_probe::span(&format!("grid:{}/t{}", size.name(), threads));
                let mut harness = Harness::new()
                    .size(size)
                    .seed(self.seed)
                    .repetitions(self.reps)
                    .threads(threads);
                if let Some(budget) = self.timeout {
                    harness = harness.timeout(budget);
                }
                let suite = harness.run_specs(&specs);
                for kernel in suite.kernels {
                    for v in kernel.variants {
                        report.cells.push(SweepCell {
                            kernel: kernel.kernel.clone(),
                            variant: v.variant,
                            size: size.name().to_owned(),
                            threads,
                            timing: v.timing,
                            outcome: v.outcome,
                        });
                    }
                }
            }
        }
        report.fits = report.compute_fits(&specs, self.knee_threshold);
        report
    }
}

/// One measured (or failed) grid point: a kernel×variant cell at one
/// problem size and thread count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// Kernel name as in the registry.
    pub kernel: String,
    /// Variant rung name (`naive` … `ninja`).
    pub variant: String,
    /// Problem-size preset name (`test` / `quick` / `paper`).
    pub size: String,
    /// Pool thread count this cell was measured with.
    pub threads: usize,
    /// Timing summary; `None` when the cell failed.
    pub timing: Option<Measurement>,
    /// How the cell ended (`Ok` or one of the failure outcomes).
    pub outcome: VariantOutcome,
}

impl SweepCell {
    /// Median seconds when the cell measured.
    pub fn median_s(&self) -> Option<f64> {
        self.timing.as_ref().map(|t| t.median_s)
    }
}

/// Fitted scaling models for one kernel×variant×size curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepFit {
    /// Kernel name as in the registry.
    pub kernel: String,
    /// Variant rung name.
    pub variant: String,
    /// Problem-size preset name.
    pub size: String,
    /// The kernel's static roofline classification (`compute` /
    /// `memory`), used for the knee cross-check.
    pub bound: String,
    /// Amdahl serial fraction (κ pinned to 0).
    pub serial_fraction: f64,
    /// USL contention σ.
    pub contention: f64,
    /// USL coherency κ.
    pub coherency: f64,
    /// Coefficient of determination of the USL fit in speedup space.
    pub r_squared: f64,
    /// Detected scaling knee (thread count), `None` when the curve
    /// never flattens inside the measured grid.
    pub knee_threads: Option<usize>,
}

/// Everything one sweep produced: the raw cell grid plus the per-curve
/// model fits. Serializes to `sweep_report.json` and is the payload
/// `perfdb record --sweep` ingests.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// Input-generation seed shared by all grid points.
    pub seed: u64,
    /// Timed repetitions per cell.
    pub reps: u32,
    /// Active SIMD backend name.
    pub simd_backend: String,
    /// Size-preset names swept (outer axis).
    pub sizes: Vec<String>,
    /// Thread counts swept (inner axis).
    pub threads: Vec<usize>,
    /// Marginal-speedup threshold used for knee detection.
    pub knee_threshold: f64,
    /// Every measured/failed grid point.
    pub cells: Vec<SweepCell>,
    /// Per kernel×variant×size model fits (curves with fewer than two
    /// measured thread counts have no entry).
    pub fits: Vec<SweepFit>,
}

impl SweepReport {
    /// The cell for one exact grid point, if present.
    pub fn cell(
        &self,
        kernel: &str,
        variant: &str,
        size: &str,
        threads: usize,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.kernel == kernel && c.variant == variant && c.size == size && c.threads == threads
        })
    }

    /// The fit for one kernel×variant×size curve, if it was fittable.
    pub fn fit(&self, kernel: &str, variant: &str, size: &str) -> Option<&SweepFit> {
        self.fits
            .iter()
            .find(|f| f.kernel == kernel && f.variant == variant && f.size == size)
    }

    /// Measured speedup curve for one kernel×variant×size:
    /// `(threads, speedup)` points relative to the smallest measured
    /// thread count, ascending. Failed cells are skipped; an empty
    /// vector means the baseline (smallest thread count) never
    /// measured.
    pub fn speedup_points(&self, kernel: &str, variant: &str, size: &str) -> Vec<(usize, f64)> {
        let mut measured: Vec<(usize, f64)> = self
            .cells
            .iter()
            .filter(|c| c.kernel == kernel && c.variant == variant && c.size == size)
            .filter_map(|c| c.median_s().map(|m| (c.threads, m)))
            .filter(|&(_, m)| m.is_finite() && m > 0.0)
            .collect();
        measured.sort_by_key(|p| p.0);
        measured.dedup_by_key(|p| p.0);
        let Some(&(_, base)) = measured.first() else {
            return Vec::new();
        };
        measured.into_iter().map(|(n, m)| (n, base / m)).collect()
    }

    /// Kernel names present in the report, in first-seen order.
    pub fn kernels(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.kernel) {
                names.push(c.kernel.clone());
            }
        }
        names
    }

    /// Grid cells that did not measure cleanly.
    pub fn failures(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| !c.outcome.is_ok())
    }

    /// Fits every kernel×variant×size curve with at least two measured
    /// thread counts. `specs` supplies the static `bound`
    /// classification for the cross-check.
    fn compute_fits(&self, specs: &[KernelSpec], knee_threshold: f64) -> Vec<SweepFit> {
        let mut fits = Vec::new();
        for spec in specs {
            for size in &self.sizes {
                for variant in ninja_kernels::Variant::ALL {
                    let points = self.speedup_points(spec.name, variant.name(), size);
                    let Some(fit) = fit_scaling(&points) else {
                        continue;
                    };
                    fits.push(SweepFit {
                        kernel: spec.name.to_owned(),
                        variant: variant.name().to_owned(),
                        size: size.clone(),
                        bound: spec.bound.to_owned(),
                        serial_fraction: fit.serial_fraction,
                        contention: fit.contention,
                        coherency: fit.coherency,
                        r_squared: fit.r_squared,
                        knee_threads: detect_knee(&points, knee_threshold),
                    });
                }
            }
        }
        fits
    }

    /// Pretty JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep reports are serializable")
    }

    /// Parses a report previously produced by [`SweepReport::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Flat CSV of the grid: one row per cell, with that curve's fitted
    /// parameters repeated on every row (empty when the curve was not
    /// fittable).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "kernel,variant,size,threads,outcome,median_s,speedup,\
             serial_fraction,contention,coherency,r_squared,knee_threads\n",
        );
        for c in &self.cells {
            let speedup = self
                .speedup_points(&c.kernel, &c.variant, &c.size)
                .iter()
                .find(|&&(n, _)| n == c.threads)
                .map(|&(_, s)| format!("{s:.4}"))
                .unwrap_or_default();
            let median = c.median_s().map(|m| format!("{m:.9}")).unwrap_or_default();
            let fit_cols = match self.fit(&c.kernel, &c.variant, &c.size) {
                Some(f) => format!(
                    "{:.6},{:.6},{:.6},{:.4},{}",
                    f.serial_fraction,
                    f.contention,
                    f.coherency,
                    f.r_squared,
                    f.knee_threads.map(|k| k.to_string()).unwrap_or_default()
                ),
                None => ",,,,".to_owned(),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                c.kernel,
                c.variant,
                c.size,
                c.threads,
                c.outcome.kind(),
                median,
                speedup,
                fit_cols
            ));
        }
        out
    }

    /// Full ASCII rendering: per kernel×size a speedup table (one row
    /// per rung, one column per thread count, fitted parameters at the
    /// end), per-rung efficiency rows, `#`-bar speedup curves, and the
    /// knee-vs-bound cross-check summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let max_n = self.threads.iter().copied().max().unwrap_or(1);
        for kernel in self.kernels() {
            for size in &self.sizes {
                let bound = self
                    .fits
                    .iter()
                    .find(|f| f.kernel == kernel && &f.size == size)
                    .map(|f| f.bound.as_str())
                    .unwrap_or("?");
                out.push_str(&format!("== {kernel} ({bound}-bound, size={size}) ==\n"));
                out.push_str(&self.kernel_table(&kernel, size));
                out.push_str(&self.kernel_curves(&kernel, size, max_n));
                out.push('\n');
            }
        }
        out.push_str(&self.knee_cross_check());
        out
    }

    /// Speedup + fit table for one kernel×size.
    fn kernel_table(&self, kernel: &str, size: &str) -> String {
        let mut headers: Vec<String> = vec!["rung".into()];
        headers.extend(self.threads.iter().map(|n| format!("S@{n}")));
        headers.extend(self.threads.iter().map(|n| format!("eff@{n}")));
        headers.extend(
            ["serial", "sigma", "kappa", "r2", "knee"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for variant in ninja_kernels::Variant::ALL {
            let points = self.speedup_points(kernel, variant.name(), size);
            let mut row = vec![variant.name().to_owned()];
            for &n in &self.threads {
                row.push(
                    points
                        .iter()
                        .find(|&&(pn, _)| pn == n)
                        .map(|&(_, s)| format!("{s:.2}"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            for &n in &self.threads {
                row.push(
                    points
                        .iter()
                        .find(|&&(pn, _)| pn == n)
                        .map(|&(_, s)| format!("{:.0}%", 100.0 * s / n as f64))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            match self.fit(kernel, variant.name(), size) {
                Some(f) => {
                    row.push(format!("{:.3}", f.serial_fraction));
                    row.push(format!("{:.3}", f.contention));
                    row.push(format!("{:.4}", f.coherency));
                    row.push(format!("{:.3}", f.r_squared));
                    row.push(
                        f.knee_threads
                            .map(|k| k.to_string())
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                None => row.extend(std::iter::repeat_n("-".to_owned(), 5)),
            }
            rows.push(row);
        }
        render::table(&header_refs, &rows)
    }

    /// `#`-bar speedup curves for one kernel×size: per rung, one bar
    /// per thread count, full width = perfect linear scaling.
    fn kernel_curves(&self, kernel: &str, size: &str, max_n: usize) -> String {
        const WIDTH: usize = 24;
        let mut out = String::from("  curve (bar = measured speedup; full width = linear)\n");
        for variant in ninja_kernels::Variant::ALL {
            let points = self.speedup_points(kernel, variant.name(), size);
            if points.is_empty() {
                continue;
            }
            for (i, &(n, s)) in points.iter().enumerate() {
                let label = if i == 0 { variant.name() } else { "" };
                let bar = render::bar(s, max_n as f64, WIDTH);
                out.push_str(&format!(
                    "  {label:<12} n={n:<3} |{bar:<width$}| {s:.2}\n",
                    width = WIDTH
                ));
            }
        }
        out
    }

    /// Summarizes where each bound class knees, and whether the
    /// ordering matches the roofline expectation (bandwidth-bound cells
    /// knee earlier than compute-bound ones).
    fn knee_cross_check(&self) -> String {
        // Parallel-capable rungs only: serial rungs have flat curves by
        // construction and would drown the signal.
        let scaled_rungs = ["parallel", "ninja"];
        let knees = |bound: &str| -> Vec<usize> {
            let mut ks: Vec<usize> = self
                .fits
                .iter()
                .filter(|f| f.bound == bound && scaled_rungs.contains(&f.variant.as_str()))
                .filter_map(|f| f.knee_threads)
                .collect();
            ks.sort_unstable();
            ks
        };
        let median = |ks: &[usize]| ks.get(ks.len() / 2).copied();
        let compute = knees("compute");
        let memory = knees("memory");
        let mut out = String::from("knee cross-check (parallel/ninja rungs):\n");
        match (median(&compute), median(&memory)) {
            (Some(c), Some(m)) => {
                let verdict = if m <= c {
                    "matches roofline expectation (bandwidth knees earlier)"
                } else {
                    "UNEXPECTED: compute-bound kneed earlier than bandwidth-bound"
                };
                out.push_str(&format!(
                    "  compute-bound median knee: {c} threads; memory-bound: {m} threads — {verdict}\n"
                ));
            }
            (c, m) => {
                let describe = |label: &str, k: Option<usize>, count: usize| match k {
                    Some(k) => format!("{label}-bound median knee: {k} threads"),
                    None if count == 0 => format!("{label}-bound: no fitted curves"),
                    None => format!("{label}-bound: no knee inside the measured grid"),
                };
                out.push_str(&format!(
                    "  {}; {}\n",
                    describe("compute", c, compute.len()),
                    describe("memory", m, memory.len())
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_grid_small_is_dense() {
        assert_eq!(thread_grid(1), vec![1]);
        assert_eq!(thread_grid(4), vec![1, 2, 3, 4]);
        assert_eq!(thread_grid(8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn thread_grid_large_is_log_spaced() {
        assert_eq!(thread_grid(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(thread_grid(12), vec![1, 2, 4, 8, 12]);
        assert_eq!(thread_grid(0), vec![1]);
    }

    #[test]
    fn tiny_sweep_produces_cells_and_fits() {
        let config = SweepConfig {
            sizes: vec![ProblemSize::Test],
            threads: vec![1, 2],
            seed: 42,
            reps: 1,
            timeout: None,
            kernels: Some(vec!["nbody".into()]),
            knee_threshold: DEFAULT_KNEE_THRESHOLD,
        };
        let report = config.run();
        // 1 kernel × 5 variants × 1 size × 2 thread counts.
        assert_eq!(report.cells.len(), 10);
        assert_eq!(report.failures().count(), 0);
        assert_eq!(report.kernels(), ["nbody"]);
        // Every rung's curve is fittable on a 2-point grid.
        assert_eq!(report.fits.len(), 5);
        for f in &report.fits {
            assert!(f.r_squared.is_finite(), "{f:?}");
            assert!((0.0..=1.0).contains(&f.serial_fraction), "{f:?}");
            assert_eq!(f.bound, "compute");
        }
        // Speedup is measured against the 1-thread baseline.
        let pts = report.speedup_points("nbody", "parallel", "test");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], (1, 1.0));
        assert!(pts[1].1 > 0.0);
    }

    #[test]
    fn sweep_report_renders_and_roundtrips() {
        let config = SweepConfig {
            sizes: vec![ProblemSize::Test],
            threads: vec![1, 2],
            kernels: Some(vec!["conv1d".into()]),
            ..SweepConfig::default()
        };
        let report = config.run();
        let text = report.render();
        assert!(text.contains("== conv1d"), "{text}");
        assert!(text.contains("knee cross-check"), "{text}");
        assert!(text.contains("sigma"), "{text}");
        let json = report.to_json();
        let back = SweepReport::from_json(&json).expect("roundtrip");
        assert_eq!(back.cells.len(), report.cells.len());
        assert_eq!(back.fits.len(), report.fits.len());
        assert_eq!(back.threads, report.threads);
        let csv = report.to_csv();
        assert!(csv.lines().count() > report.cells.len(), "{csv}");
        assert!(csv.starts_with("kernel,variant,size,threads"), "{csv}");
    }

    #[test]
    fn missing_baseline_yields_no_curve() {
        let report = SweepReport {
            seed: 0,
            reps: 1,
            simd_backend: "x".into(),
            sizes: vec!["test".into()],
            threads: vec![1, 2],
            knee_threshold: 0.5,
            cells: vec![SweepCell {
                kernel: "k".into(),
                variant: "naive".into(),
                size: "test".into(),
                threads: 2,
                timing: None,
                outcome: VariantOutcome::NonFinite,
            }],
            fits: vec![],
        };
        assert!(report.speedup_points("k", "naive", "test").is_empty());
        assert!(report.cell("k", "naive", "test", 2).is_some());
        assert!(report.cell("k", "naive", "test", 1).is_none());
        assert_eq!(report.failures().count(), 1);
    }
}
