//! ASCII rendering of tables and bar "figures" for terminal output.

use crate::report::SuiteReport;

/// Renders an aligned ASCII table with a header rule.
///
/// ```
/// let t = ninja_core::render::table(
///     &["kernel", "gap"],
///     &[vec!["nbody".into(), "24.0X".into()]],
/// );
/// assert!(t.contains("nbody"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a horizontal bar scaled so `max` fills `width` characters.
///
/// ```
/// assert_eq!(ninja_core::render::bar(2.0, 4.0, 8), "####");
/// ```
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(1, width))
}

/// Renders a log-scale bar (useful for gap ratios spanning 1X-50X).
pub fn log_bar(value: f64, max: f64, width: usize) -> String {
    if value <= 1.0 {
        return String::new();
    }
    bar(value.ln(), max.max(std::f64::consts::E).ln(), width)
}

/// Renders the per-kernel measurement table of a suite run.
///
/// Failed variants keep their row: timing columns show `-` and the last
/// column names the failure, so a partial run is obvious at a glance.
/// Measured cells with roofline attribution additionally show their
/// percent-of-roofline and bound classification.
pub fn suite_table(report: &SuiteReport) -> String {
    let mut rows = Vec::new();
    for k in &report.kernels {
        let naive_s = k.variants.first().and_then(|v| v.median_s());
        for v in &k.variants {
            let (median, gflops, gbs, vs_naive) = match v.median_s() {
                Some(s) => (
                    format!("{s:.4}"),
                    format!("{:.2}", v.gflops),
                    format!("{:.2}", v.gbs),
                    match naive_s {
                        Some(n) => format!("{:.2}X", n / s),
                        None => "-".into(),
                    },
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            let (roof, bound) = match &v.attribution {
                Some(a) => (format!("{:.1}%", a.roofline_pct), a.bound.clone()),
                None => ("-".into(), "-".into()),
            };
            rows.push(vec![
                k.kernel.clone(),
                v.variant.clone(),
                median,
                gflops,
                gbs,
                roof,
                bound,
                vs_naive,
                if v.is_ok() {
                    String::new()
                } else {
                    v.outcome.to_string()
                },
            ]);
        }
    }
    table(
        &[
            "kernel", "variant", "median s", "GFLOP/s", "GB/s", "%roof", "bound", "vs naive",
            "failure",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[
                vec!["xxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Both data rows start their second column at the same offset.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(4.0, 4.0, 10), "##########");
        assert_eq!(bar(0.0, 4.0, 10), "");
        assert_eq!(bar(0.0001, 4.0, 10), "#"); // at least one mark if positive
        assert_eq!(bar(8.0, 4.0, 10), "##########"); // clamped
    }

    #[test]
    fn log_bar_handles_unity() {
        assert_eq!(log_bar(1.0, 50.0, 20), "");
        assert!(!log_bar(2.0, 50.0, 20).is_empty());
        assert!(log_bar(50.0, 50.0, 20).len() > log_bar(5.0, 50.0, 20).len());
    }
}
