//! One entry point per table/figure of the paper.
//!
//! Each function returns the rendered artifact as a `String`; the
//! `ninja-bench` crate wraps them in `table*`/`fig*` binaries, and
//! EXPERIMENTS.md records their output next to the paper's numbers.
//!
//! Figure/table numbering follows the reconstructed index in DESIGN.md:
//!
//! * T1 suite table, T2 platform table
//! * F1 gap growth across CPU generations
//! * F2/F3 per-benchmark gap breakdown (Westmere / MIC)
//! * F4/F5 residual gap after low-effort changes (measured / MIC-projected)
//! * F6 programming effort
//! * F7 hardware gather support

use crate::render::{log_bar, table};
use crate::report::SuiteReport;
use ninja_kernels::{registry, KernelSpec, ProblemSize, Variant};
use ninja_model::{
    gap_breakdown, gather_ablation, geomean, hardware_evolution, machines, predicted_gap,
    predicted_residual, Machine,
};

/// T1: the benchmark-suite table (name, role, boundedness, key change).
pub fn table1_suite() -> String {
    let rows: Vec<Vec<String>> = registry()
        .iter()
        .map(|s| {
            vec![
                s.name.to_owned(),
                s.description.to_owned(),
                s.bound.to_owned(),
                s.variants[3].what_changed.to_owned(),
            ]
        })
        .collect();
    table(
        &["kernel", "description", "bound", "key low-effort change"],
        &rows,
    )
}

/// T2: the platform table (the paper's measured machines plus futures).
pub fn table2_platforms() -> String {
    let mut ms = machines::cpu_generations();
    ms.push(machines::mic());
    ms.push(machines::future(2));
    let rows: Vec<Vec<String>> = ms
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                m.year.to_string(),
                m.cores.to_string(),
                format!("{:.1}", m.freq_ghz),
                m.simd_f32_lanes.to_string(),
                format!("{:.0}", m.peak_gflops()),
                format!("{:.0}", m.bandwidth_gbs),
                if m.has_gather { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    table(
        &[
            "platform",
            "year",
            "cores",
            "GHz",
            "SIMD",
            "peak GF/s",
            "GB/s",
            "gather",
        ],
        &rows,
    )
}

/// F1: Ninja-gap growth across processor generations (model projection).
///
/// The paper's motivating figure: the naive-vs-Ninja gap grows from the
/// 2-core/SSE era to 6-core Westmere and keeps growing on hypothetical
/// future parts if code stays naive.
pub fn fig1_gap_growth() -> String {
    let mut machines_list = machines::cpu_generations();
    machines_list.push(machines::future(1));
    machines_list.push(machines::future(2));
    let specs = registry();
    let mut rows = Vec::new();
    let mut out = String::from("F1: projected Ninja gap (naive / best) per CPU generation\n\n");
    for m in &machines_list {
        let gaps: Vec<f64> = specs
            .iter()
            .map(|s| predicted_gap(&s.character, m))
            .collect();
        let avg = geomean(&gaps);
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        rows.push(vec![
            m.name.clone(),
            m.year.to_string(),
            format!("{avg:.1}X"),
            format!("{max:.1}X"),
            log_bar(avg, 120.0, 40),
        ]);
    }
    out.push_str(&table(
        &["platform", "year", "avg gap", "max gap", ""],
        &rows,
    ));
    out
}

/// F2/F3: per-benchmark gap breakdown on one machine (model projection).
///
/// Columns mirror the paper's stacked bars: how much of the gap threading
/// alone closes, how much compiler vectorization alone closes, the
/// algorithmic-change factor, and the residual to Ninja.
pub fn fig_breakdown(m: &Machine) -> String {
    let specs = registry();
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for s in &specs {
        let b = gap_breakdown(&s.character, m);
        totals.push(b.total);
        rows.push(vec![
            s.name.to_owned(),
            format!("{:.1}X", b.total),
            format!("{:.1}X", b.parallel),
            format!("{:.1}X", b.simd),
            format!("{:.2}X", b.algorithmic),
            format!("{:.2}X", b.residual),
            log_bar(b.total, 120.0, 40),
        ]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{:.1}X", geomean(&totals)),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let mut out = format!("Gap breakdown on {} (model projection)\n\n", m.name);
    out.push_str(&table(
        &[
            "kernel",
            "total gap",
            "+threads",
            "+compiler SIMD",
            "algo factor",
            "residual",
            "",
        ],
        &rows,
    ));
    out
}

/// F4: residual gap after low-effort changes — **measured on this host**
/// next to the Westmere model projection.
///
/// The paper's headline: the residual averages ~1.3X.
pub fn fig4_residual(suite: &SuiteReport) -> String {
    let wm = machines::westmere();
    let specs = registry();
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    let mut projected = Vec::new();
    for s in &specs {
        let model_r = predicted_residual(&s.character, &wm);
        projected.push(model_r);
        let (m_str, bar) = match suite.kernel(s.name).and_then(|k| k.measured_residual()) {
            Some(r) => {
                measured.push(r);
                (format!("{r:.2}X"), log_bar(r, 4.0, 24))
            }
            None => ("-".into(), String::new()),
        };
        rows.push(vec![
            s.name.to_owned(),
            m_str,
            format!("{model_r:.2}X"),
            bar,
        ]);
    }
    let mut footer = vec!["GEOMEAN".to_owned()];
    footer.push(if measured.is_empty() {
        "-".into()
    } else {
        format!("{:.2}X", geomean(&measured))
    });
    footer.push(format!("{:.2}X", geomean(&projected)));
    footer.push(String::new());
    rows.push(footer);
    let mut out = String::from(
        "F4: residual gap of low-effort (algorithmic+compiler+threads) code vs Ninja\n\n",
    );
    out.push_str(&table(
        &["kernel", "measured (this host)", "model (Westmere)", ""],
        &rows,
    ));
    out
}

/// F5: residual gap projected on MIC.
pub fn fig5_mic_residual() -> String {
    let mic = machines::mic();
    let specs = registry();
    let mut rows = Vec::new();
    let mut rs = Vec::new();
    for s in &specs {
        let r = predicted_residual(&s.character, &mic);
        rs.push(r);
        rows.push(vec![
            s.name.to_owned(),
            format!("{r:.2}X"),
            log_bar(r, 4.0, 24),
        ]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{:.2}X", geomean(&rs)),
        String::new(),
    ]);
    let mut out = String::from("F5: residual gap vs Ninja on Intel MIC (model projection)\n\n");
    out.push_str(&table(&["kernel", "residual", ""], &rows));
    out
}

/// F6: programming effort (LoC changed vs naive) against the speedup each
/// tier delivers (Westmere projection) — the paper's effort argument:
/// traditional tiers buy most of the performance for a small fraction of
/// the Ninja effort.
pub fn fig6_effort() -> String {
    let wm = machines::westmere();
    let specs = registry();
    let mut rows = Vec::new();
    for s in &specs {
        let gap = predicted_gap(&s.character, &wm);
        let residual = predicted_residual(&s.character, &wm);
        let algo_loc = s.variants[3].effort_loc;
        let ninja_loc = s.variants[4].effort_loc;
        let frac_perf = gap / residual / gap; // fraction of ninja perf reached
        rows.push(vec![
            s.name.to_owned(),
            algo_loc.to_string(),
            ninja_loc.to_string(),
            format!("{:.0}%", 100.0 * algo_loc as f64 / ninja_loc as f64),
            format!("{:.0}%", 100.0 * frac_perf),
        ]);
    }
    let mut out = String::from(
        "F6: programming effort — lines changed vs naive, and the share of\nNinja performance the low-effort tier reaches (Westmere model)\n\n",
    );
    out.push_str(&table(
        &[
            "kernel",
            "low-effort LoC",
            "ninja LoC",
            "effort ratio",
            "perf reached",
        ],
        &rows,
    ));
    out
}

/// F7: hardware programmability — the gather-support ablation.
pub fn fig7_hardware_gather() -> String {
    let wm = machines::westmere();
    let specs = registry();
    let mut rows = Vec::new();
    for s in &specs {
        if s.character.gather_per_elem == 0.0 {
            continue;
        }
        let (r_no, r_yes, ninja_gain) = gather_ablation(&s.character, &wm);
        rows.push(vec![
            s.name.to_owned(),
            format!("{:.0}", s.character.gather_per_elem),
            format!("{r_no:.2}X"),
            format!("{r_yes:.2}X"),
            format!("{ninja_gain:.2}X"),
        ]);
    }
    let mut out =
        String::from("F7: effect of hardware gather support (model, Westmere-class core)\n\n");
    out.push_str(&table(
        &[
            "kernel",
            "gathers/elem",
            "residual w/o gather",
            "residual w/ gather",
            "ninja speedup",
        ],
        &rows,
    ));
    out.push_str("\nHardware-evolution sweep (gather -> +FMA -> +AVX) on the same core:\n\n");
    let mut rows = Vec::new();
    for s in &specs {
        let steps = hardware_evolution(&s.character, &wm);
        let mut row = vec![s.name.to_owned()];
        for step in &steps[1..] {
            row.push(format!("{:.2}X", step.ninja_speedup));
        }
        row.push(format!("{:.2}X", steps[3].residual));
        rows.push(row);
    }
    out.push_str(&table(
        &["kernel", "+gather", "+FMA", "+AVX", "final residual"],
        &rows,
    ));
    out
}

/// A3 (ours): working-set scaling — throughput (million elements/s) of the
/// naive and ninja tiers across problem-size presets, exposing where each
/// kernel falls off a cache level.
pub fn size_scaling(threads: usize, reps: u32) -> String {
    size_scaling_over(&[ProblemSize::Test, ProblemSize::Quick], threads, reps)
}

/// [`size_scaling`] over an explicit list of presets (exposed for tests and
/// custom sweeps).
pub fn size_scaling_over(sizes: &[ProblemSize], threads: usize, reps: u32) -> String {
    let specs = registry();
    let mut per_kernel: Vec<Vec<String>> = specs.iter().map(|s| vec![s.name.to_owned()]).collect();
    for &size in sizes {
        let harness = crate::Harness::new()
            .size(size)
            .threads(threads)
            .repetitions(reps);
        let suite = harness.run_suite();
        for (row, spec) in per_kernel.iter_mut().zip(specs.iter()) {
            let k = suite.kernel(spec.name).expect("kernel ran");
            let mut cells = Vec::new();
            for vname in ["naive", "ninja"] {
                let median = k
                    .variants
                    .iter()
                    .find(|v| v.variant == vname)
                    .and_then(|v| v.median_s());
                cells.push(match median {
                    Some(s) => {
                        let instance = (spec.make)(size, 42);
                        let elems = instance.work().elems as f64;
                        format!("{:.2}", elems / s / 1e6)
                    }
                    None => "-".into(),
                });
            }
            row.extend(cells);
        }
    }
    let mut headers: Vec<String> = vec!["kernel".into()];
    for size in sizes {
        headers.push(format!("naive@{size}"));
        headers.push(format!("ninja@{size}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut out =
        String::from("A3: throughput scaling across working-set sizes (million elems/s)\n\n");
    out.push_str(&table(&header_refs, &per_kernel));
    out
}

/// Runs the measured half of the evaluation at the given size and renders
/// everything (convenience for the `reproduce` binary).
pub fn full_report(size: ProblemSize, threads: usize, reps: u32) -> (SuiteReport, String) {
    let harness = crate::Harness::new()
        .size(size)
        .threads(threads)
        .repetitions(reps);
    full_report_with(&harness, Vec::new())
}

/// [`full_report`] over a pre-configured harness (timeout, fail-fast, …)
/// plus injected extra specs — e.g. chaos kernels — which run after the
/// registry suite. A failed variant never aborts the run; the rendered
/// output ends with a failure summary when anything went wrong.
pub fn full_report_with(harness: &crate::Harness, extra: Vec<KernelSpec>) -> (SuiteReport, String) {
    let mut specs = registry();
    specs.extend(extra);
    let suite = harness.run_specs(&specs);
    let mut out = String::new();
    out.push_str("== T1: benchmark suite ==\n\n");
    out.push_str(&table1_suite());
    out.push_str("\n== T2: platforms ==\n\n");
    out.push_str(&table2_platforms());
    out.push_str("\n== F1 ==\n\n");
    out.push_str(&fig1_gap_growth());
    out.push_str("\n== F2 (Westmere) ==\n\n");
    out.push_str(&fig_breakdown(&machines::westmere()));
    out.push_str("\n== F3 (MIC) ==\n\n");
    out.push_str(&fig_breakdown(&machines::mic()));
    out.push_str("\n== F4 ==\n\n");
    out.push_str(&fig4_residual(&suite));
    out.push_str("\n== F5 ==\n\n");
    out.push_str(&fig5_mic_residual());
    out.push_str("\n== F6 ==\n\n");
    out.push_str(&fig6_effort());
    out.push_str("\n== F7 ==\n\n");
    out.push_str(&fig7_hardware_gather());
    out.push_str("\n== measured suite detail ==\n\n");
    out.push_str(&crate::render::suite_table(&suite));
    if suite.has_failures() {
        out.push_str("\n== FAILURES (partial results above are still valid) ==\n\n");
        out.push_str(&suite.failure_summary());
    }
    (suite, out)
}

/// Measured single-host counterpart of the gap breakdown: speedup of each
/// tier over naive, per kernel (the thread axis is flat on a 1-core host).
pub fn measured_ladder(suite: &SuiteReport) -> String {
    let mut rows = Vec::new();
    for k in &suite.kernels {
        let mut row = vec![k.kernel.clone()];
        for v in [
            Variant::Parallel,
            Variant::Simd,
            Variant::Algorithmic,
            Variant::Ninja,
        ] {
            row.push(match k.speedup_over_naive(v) {
                Some(s) => format!("{s:.2}X"),
                None => "-".into(),
            });
        }
        rows.push(row);
    }
    table(
        &[
            "kernel",
            "+threads",
            "+compiler SIMD",
            "low-effort",
            "ninja",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_all_kernels() {
        let t1 = table1_suite();
        for s in registry() {
            assert!(t1.contains(s.name), "{} missing from T1", s.name);
        }
        assert!(table2_platforms().contains("Westmere"));
        assert!(table2_platforms().contains("MIC"));
    }

    #[test]
    fn fig1_shows_growth() {
        let f = fig1_gap_growth();
        assert!(f.contains("Conroe"));
        assert!(f.contains("Hypothetical"));
    }

    #[test]
    fn breakdown_contains_geomean() {
        let f = fig_breakdown(&machines::westmere());
        assert!(f.contains("GEOMEAN"));
        assert!(f.contains("nbody"));
    }

    #[test]
    fn fig7_covers_gather_table_and_evolution_sweep() {
        let f = fig7_hardware_gather();
        assert!(f.contains("treesearch"));
        assert!(f.contains("volumerender"));
        assert!(f.contains("backprojection"));
        // Evolution sweep covers every kernel, including non-gather ones.
        assert!(f.contains("+FMA") && f.contains("conv1d"));
    }

    #[test]
    fn size_scaling_renders_one_column_pair_per_size() {
        let t = size_scaling_over(&[ProblemSize::Test], 1, 1);
        assert!(t.contains("naive@test") && t.contains("ninja@test"));
        assert!(!t.contains("quick"));
        for s in registry() {
            assert!(t.contains(s.name));
        }
    }

    #[test]
    fn measured_figures_from_tiny_run() {
        let harness = crate::Harness::new()
            .size(ProblemSize::Test)
            .threads(1)
            .repetitions(1);
        let suite = harness.run_kernels(&["nbody", "conv1d"]);
        let f4 = fig4_residual(&suite);
        assert!(f4.contains("nbody") && f4.contains("GEOMEAN"));
        let ladder = measured_ladder(&suite);
        assert!(ladder.contains("conv1d"));
    }
}
