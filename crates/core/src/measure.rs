//! Wall-clock measurement with warmup and median-of-N repetition.

use std::time::Instant;

/// The timing of one measured workload.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Measurement {
    /// Median wall-clock seconds across repetitions.
    pub median_s: f64,
    /// Arithmetic mean across repetitions.
    pub mean_s: f64,
    /// Sample standard deviation across repetitions (0 for one run).
    pub stddev_s: f64,
    /// Fastest repetition.
    pub min_s: f64,
    /// Slowest repetition.
    pub max_s: f64,
    /// Number of timed repetitions.
    pub runs: u32,
}

impl Measurement {
    /// Relative spread `(max − min) / median` — a quick noise indicator.
    ///
    /// **Contract:** the value is *relative* (dimensionless, in units of
    /// the median), not absolute seconds: `0.10` means the repetitions
    /// span 10% of the median. Because it is scale-free it can be
    /// compared across kernels of wildly different runtimes, and it is
    /// what the `ninja-perfdb` regression comparator consumes directly as
    /// its default per-cell noise floor (a cell must shift by more than
    /// its own measured spread before a verdict leaves "noise").
    ///
    /// A zero median (degenerate, e.g. an unmeasured stub) reports zero
    /// spread rather than dividing by zero.
    ///
    /// ```
    /// use ninja_core::Measurement;
    /// let m = Measurement {
    ///     median_s: 2.0,
    ///     mean_s: 2.05,
    ///     stddev_s: 0.1,
    ///     min_s: 1.9,
    ///     max_s: 2.3,
    ///     runs: 5,
    /// };
    /// // (2.3 − 1.9) / 2.0 = 0.2: relative, not seconds.
    /// assert!((m.spread() - 0.2).abs() < 1e-12);
    /// // Scaling the measurement leaves the spread unchanged.
    /// let scaled = Measurement { median_s: 4.0, mean_s: 4.1, stddev_s: 0.2,
    ///                            min_s: 3.8, max_s: 4.6, runs: 5 };
    /// assert!((scaled.spread() - m.spread()).abs() < 1e-12);
    /// ```
    pub fn spread(&self) -> f64 {
        if self.median_s == 0.0 {
            0.0
        } else {
            (self.max_s - self.min_s) / self.median_s
        }
    }
}

/// Times `body` with `warmup` untimed runs followed by `runs` timed runs,
/// reporting the median (robust to one-off scheduling noise).
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure<F: FnMut()>(warmup: u32, runs: u32, mut body: F) -> Measurement {
    assert!(runs > 0, "measure needs at least one timed run");
    for _ in 0..warmup {
        body();
    }
    let mut times = Vec::with_capacity(runs as usize);
    for _ in 0..runs {
        let start = Instant::now();
        body();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN durations"));
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let var = if times.len() > 1 {
        times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (times.len() - 1) as f64
    } else {
        0.0
    };
    Measurement {
        median_s: times[times.len() / 2],
        mean_s: mean,
        stddev_s: var.sqrt(),
        min_s: times[0],
        max_s: times[times.len() - 1],
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_warmup_and_runs() {
        let mut calls = 0;
        let m = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(m.runs, 5);
        assert!(m.min_s <= m.median_s && m.median_s <= m.max_s);
    }

    #[test]
    fn measures_something_positive() {
        let m = measure(0, 3, || {
            std::hint::black_box((0..10_000).sum::<u64>());
        });
        assert!(m.median_s >= 0.0);
        assert!(m.spread() >= 0.0);
        assert!(m.mean_s >= m.min_s && m.mean_s <= m.max_s);
        assert!(m.stddev_s >= 0.0);
    }

    #[test]
    fn single_run_has_zero_stddev() {
        let m = measure(0, 1, || {});
        assert_eq!(m.stddev_s, 0.0);
        assert_eq!(m.mean_s, m.median_s);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_runs_rejected() {
        let _ = measure(0, 0, || {});
    }
}
