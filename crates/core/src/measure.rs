//! Wall-clock measurement with warmup and median-of-N repetition.

use std::time::Instant;

/// The timing of one measured workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Median wall-clock seconds across repetitions.
    pub median_s: f64,
    /// Arithmetic mean across repetitions.
    pub mean_s: f64,
    /// Sample standard deviation across repetitions (0 for one run).
    pub stddev_s: f64,
    /// Fastest repetition.
    pub min_s: f64,
    /// Slowest repetition.
    pub max_s: f64,
    /// Number of timed repetitions.
    pub runs: u32,
    /// Raw per-repetition seconds in execution order — opt-in (see
    /// [`measure_with_samples`]); empty when not collected. Kept out of
    /// the JSON wire format when empty so reports and perfdb fixtures
    /// written before this field existed parse unchanged.
    pub samples: Vec<f64>,
}

impl Measurement {
    /// Relative spread `(max − min) / median` — a quick noise indicator.
    ///
    /// **Contract:** the value is *relative* (dimensionless, in units of
    /// the median), not absolute seconds: `0.10` means the repetitions
    /// span 10% of the median. Because it is scale-free it can be
    /// compared across kernels of wildly different runtimes, and it is
    /// what the `ninja-perfdb` regression comparator consumes directly as
    /// its default per-cell noise floor (a cell must shift by more than
    /// its own measured spread before a verdict leaves "noise").
    ///
    /// A zero median (degenerate, e.g. an unmeasured stub) reports zero
    /// spread rather than dividing by zero.
    ///
    /// ```
    /// use ninja_core::Measurement;
    /// let m = Measurement {
    ///     median_s: 2.0,
    ///     mean_s: 2.05,
    ///     stddev_s: 0.1,
    ///     min_s: 1.9,
    ///     max_s: 2.3,
    ///     runs: 5,
    ///     samples: Vec::new(),
    /// };
    /// // (2.3 − 1.9) / 2.0 = 0.2: relative, not seconds.
    /// assert!((m.spread() - 0.2).abs() < 1e-12);
    /// // Scaling the measurement leaves the spread unchanged.
    /// let scaled = Measurement { median_s: 4.0, mean_s: 4.1, stddev_s: 0.2,
    ///                            min_s: 3.8, max_s: 4.6, runs: 5,
    ///                            samples: Vec::new() };
    /// assert!((scaled.spread() - m.spread()).abs() < 1e-12);
    /// ```
    pub fn spread(&self) -> f64 {
        if self.median_s == 0.0 {
            0.0
        } else {
            (self.max_s - self.min_s) / self.median_s
        }
    }
}

// Hand-written (not derived) so the wire format stays exactly what it was
// before `samples` existed: the field is omitted when empty on write and
// defaulted to empty when absent on read. The derive stand-in would
// instead hard-error on pre-existing JSON without the field.
impl serde::Serialize for Measurement {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            ("median_s".to_owned(), self.median_s.to_value()),
            ("mean_s".to_owned(), self.mean_s.to_value()),
            ("stddev_s".to_owned(), self.stddev_s.to_value()),
            ("min_s".to_owned(), self.min_s.to_value()),
            ("max_s".to_owned(), self.max_s.to_value()),
            ("runs".to_owned(), self.runs.to_value()),
        ];
        if !self.samples.is_empty() {
            pairs.push(("samples".to_owned(), self.samples.to_value()));
        }
        serde::Value::Object(pairs)
    }
}

impl serde::Deserialize for Measurement {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            median_s: f64::from_value(v.field("median_s")?)?,
            mean_s: f64::from_value(v.field("mean_s")?)?,
            stddev_s: f64::from_value(v.field("stddev_s")?)?,
            min_s: f64::from_value(v.field("min_s")?)?,
            max_s: f64::from_value(v.field("max_s")?)?,
            runs: u32::from_value(v.field("runs")?)?,
            samples: match v.field("samples") {
                Ok(val) => Vec::<f64>::from_value(val)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

/// Times `body` with `warmup` untimed runs followed by `runs` timed runs,
/// reporting the median (robust to one-off scheduling noise).
///
/// When span tracing is on ([`ninja_probe::set_tracing`]) the warmup
/// block and every timed repetition record their own span, so a trace
/// shows each rep individually rather than one opaque measurement block.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure<F: FnMut()>(warmup: u32, runs: u32, body: F) -> Measurement {
    measure_with_samples(warmup, runs, false, body)
}

/// [`measure`], optionally keeping the raw per-repetition samples on the
/// returned [`Measurement`] (`keep_samples`). Collection is opt-in
/// because samples grow reports linearly in `runs` and most consumers
/// only want the summary statistics.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_with_samples<F: FnMut()>(
    warmup: u32,
    runs: u32,
    keep_samples: bool,
    mut body: F,
) -> Measurement {
    assert!(runs > 0, "measure needs at least one timed run");
    {
        let _warmup_span = if warmup > 0 && ninja_probe::tracing_enabled() {
            Some(ninja_probe::span("warmup"))
        } else {
            None
        };
        for _ in 0..warmup {
            body();
        }
    }
    let mut times = Vec::with_capacity(runs as usize);
    for rep in 0..runs {
        let _rep_span = if ninja_probe::tracing_enabled() {
            Some(ninja_probe::span(&format!("rep:{rep}")))
        } else {
            None
        };
        let start = Instant::now();
        body();
        times.push(start.elapsed().as_secs_f64());
    }
    let samples = if keep_samples {
        times.clone()
    } else {
        Vec::new()
    };
    times.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN durations"));
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let var = if times.len() > 1 {
        times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (times.len() - 1) as f64
    } else {
        0.0
    };
    Measurement {
        median_s: times[times.len() / 2],
        mean_s: mean,
        stddev_s: var.sqrt(),
        min_s: times[0],
        max_s: times[times.len() - 1],
        runs,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_warmup_and_runs() {
        let mut calls = 0;
        let m = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(m.runs, 5);
        assert!(m.min_s <= m.median_s && m.median_s <= m.max_s);
        assert!(m.samples.is_empty(), "samples are opt-in");
    }

    #[test]
    fn measures_something_positive() {
        let m = measure(0, 3, || {
            std::hint::black_box((0..10_000).sum::<u64>());
        });
        assert!(m.median_s >= 0.0);
        assert!(m.spread() >= 0.0);
        assert!(m.mean_s >= m.min_s && m.mean_s <= m.max_s);
        assert!(m.stddev_s >= 0.0);
    }

    #[test]
    fn single_run_has_zero_stddev() {
        let m = measure(0, 1, || {});
        assert_eq!(m.stddev_s, 0.0);
        assert_eq!(m.mean_s, m.median_s);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_runs_rejected() {
        let _ = measure(0, 0, || {});
    }

    #[test]
    fn opt_in_samples_match_summary_stats() {
        let m = measure_with_samples(0, 5, true, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(m.samples.len(), 5);
        let min = m.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = m.samples.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(min, m.min_s);
        assert_eq!(max, m.max_s);
        // Samples are in execution order, not sorted.
        let mean = m.samples.iter().sum::<f64>() / 5.0;
        assert!((mean - m.mean_s).abs() < 1e-15);
    }

    #[test]
    fn wire_format_omits_empty_samples_and_tolerates_absence() {
        let without = measure(0, 2, || {});
        let json = serde_json::to_string(&without).unwrap();
        assert!(
            !json.contains("samples"),
            "empty samples must stay off the wire: {json}"
        );
        // Pre-`samples` JSON (exactly what older reports contain) parses.
        let legacy = r#"{"median_s":1.0,"mean_s":1.0,"stddev_s":0.0,
                         "min_s":0.9,"max_s":1.1,"runs":3}"#;
        let m: Measurement = serde_json::from_str(legacy).unwrap();
        assert_eq!(m.runs, 3);
        assert!(m.samples.is_empty());
        // And collected samples round-trip.
        let with = measure_with_samples(0, 3, true, || {});
        let back: Measurement =
            serde_json::from_str(&serde_json::to_string(&with).unwrap()).unwrap();
        assert_eq!(with, back);
    }
}
