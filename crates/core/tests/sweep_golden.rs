//! Golden-file test for the `SweepReport` JSON schema.
//!
//! The fixture at `tests/fixtures/sweep_report.json` is the serialized
//! form of a fully deterministic synthetic sweep (no live measurement,
//! so no timing jitter). The test regenerates the report in memory and
//! asserts the on-disk bytes match exactly — any schema drift (renamed
//! field, changed nesting, different float formatting) fails here
//! before it can break `perfdb record --sweep` or external consumers.
//!
//! Regenerate after an *intentional* schema change with:
//!
//! ```text
//! REGEN_FIXTURES=1 cargo test -p ninja-core --test sweep_golden
//! ```

use ninja_core::{Measurement, SweepCell, SweepFit, SweepReport, VariantOutcome};
use ninja_model::scaling::{detect_knee, fit_scaling, DEFAULT_KNEE_THRESHOLD};
use std::path::PathBuf;

const KERNELS: [(&str, &str); 2] = [("blackscholes", "compute"), ("lbm", "memory")];
const VARIANTS: [&str; 5] = ["naive", "parallel", "simd", "algorithmic", "ninja"];
const THREADS: [usize; 3] = [1, 2, 4];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("sweep_report.json")
}

/// Deterministic timing summary around `median` (same 5% spread shape
/// as the perfdb fixture generator).
fn sample(median: f64) -> Measurement {
    Measurement {
        median_s: median,
        mean_s: median * 1.01,
        stddev_s: median * 0.02,
        min_s: median * 0.97,
        max_s: median * 1.05,
        runs: 3,
        samples: Vec::new(),
    }
}

/// Synthetic 1-thread median for cell (ki, vi): rungs get faster down
/// the ladder, the second kernel is faster than the first.
fn base_median(ki: usize, vi: usize) -> f64 {
    0.100 / (1.0 + ki as f64) / (1.0 + vi as f64)
}

/// Synthetic parallel efficiency: serial rungs (naive/simd/algorithmic)
/// do not scale; parallel/ninja scale Amdahl-style, with the
/// memory-bound kernel dragging a larger serial fraction.
fn scaled_median(ki: usize, vi: usize, threads: usize) -> f64 {
    let scales = matches!(VARIANTS[vi], "parallel" | "ninja");
    if !scales || threads == 1 {
        return base_median(ki, vi);
    }
    let sigma = if KERNELS[ki].1 == "memory" {
        0.30
    } else {
        0.05
    };
    let n = threads as f64;
    let speedup = n / (1.0 + sigma * (n - 1.0));
    base_median(ki, vi) / speedup
}

/// Builds the golden report: a full grid with one injected failure
/// (lbm/ninja at 4 threads times out) so the schema's failure shape is
/// pinned too.
fn golden_report() -> SweepReport {
    let mut cells = Vec::new();
    for (ki, &(kernel, _)) in KERNELS.iter().enumerate() {
        for (vi, &variant) in VARIANTS.iter().enumerate() {
            for &threads in &THREADS {
                let failed = kernel == "lbm" && variant == "ninja" && threads == 4;
                cells.push(SweepCell {
                    kernel: kernel.to_owned(),
                    variant: variant.to_owned(),
                    size: "test".to_owned(),
                    threads,
                    timing: (!failed).then(|| sample(scaled_median(ki, vi, threads))),
                    outcome: if failed {
                        VariantOutcome::TimedOut { budget_s: 10.0 }
                    } else {
                        VariantOutcome::Ok
                    },
                });
            }
        }
    }
    let mut report = SweepReport {
        seed: 42,
        reps: 3,
        simd_backend: "scalar".to_owned(),
        sizes: vec!["test".to_owned()],
        threads: THREADS.to_vec(),
        knee_threshold: DEFAULT_KNEE_THRESHOLD,
        cells,
        fits: Vec::new(),
    };
    for &(kernel, bound) in &KERNELS {
        for &variant in &VARIANTS {
            let points = report.speedup_points(kernel, variant, "test");
            let Some(fit) = fit_scaling(&points) else {
                continue;
            };
            report.fits.push(SweepFit {
                kernel: kernel.to_owned(),
                variant: variant.to_owned(),
                size: "test".to_owned(),
                bound: bound.to_owned(),
                serial_fraction: fit.serial_fraction,
                contention: fit.contention,
                coherency: fit.coherency,
                r_squared: fit.r_squared,
                knee_threads: detect_knee(&points, DEFAULT_KNEE_THRESHOLD),
            });
        }
    }
    report
}

#[test]
fn golden_fixture_matches_generator() {
    let generated = golden_report().to_json();
    let path = fixture_path();
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        std::fs::write(&path, &generated).expect("write fixture");
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        on_disk, generated,
        "sweep_report.json schema drifted; regenerate with REGEN_FIXTURES=1 \
         if the change is intentional"
    );
}

#[test]
fn golden_fixture_roundtrips() {
    let on_disk = std::fs::read_to_string(fixture_path()).expect("fixture present");
    let report = SweepReport::from_json(&on_disk).expect("fixture parses");
    assert_eq!(
        report.cells.len(),
        KERNELS.len() * VARIANTS.len() * THREADS.len()
    );
    assert_eq!(report.threads, THREADS.to_vec());
    // Re-serializing the parsed report reproduces the exact bytes.
    assert_eq!(report.to_json(), on_disk);
}

#[test]
fn golden_fixture_has_expected_shape() {
    let report = golden_report();
    // Serial rungs are flat (σ clamps to 1); scaled rungs fit their
    // generator σ exactly (noise-free curves).
    let par = report.fit("blackscholes", "parallel", "test").expect("fit");
    assert!((par.serial_fraction - 0.05).abs() < 1e-9, "{par:?}");
    assert!((par.r_squared - 1.0).abs() < 1e-9, "{par:?}");
    let mem = report.fit("lbm", "parallel", "test").expect("fit");
    assert!((mem.serial_fraction - 0.30).abs() < 1e-9, "{mem:?}");
    // The failed lbm/ninja cell drops its 4-thread point but the curve
    // (1, 2 threads) still fits.
    let lbm_ninja = report.fit("lbm", "ninja", "test").expect("fit");
    assert!(
        (lbm_ninja.serial_fraction - 0.30).abs() < 1e-9,
        "{lbm_ninja:?}"
    );
    assert_eq!(report.speedup_points("lbm", "ninja", "test").len(), 2);
    assert_eq!(report.failures().count(), 1);
    // The memory-bound kernel knees no later than the compute-bound one
    // on this grid — the cross-check the renderer reports.
    let knee_mem = mem.knee_threads.unwrap_or(usize::MAX);
    let knee_cpu = par.knee_threads.unwrap_or(usize::MAX);
    assert!(knee_mem <= knee_cpu, "mem={knee_mem} cpu={knee_cpu}");
}
