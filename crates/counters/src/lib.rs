//! `ninja-counters`: hardware performance-counter windows over
//! `perf_event_open`, with graceful degradation everywhere perf is not
//! available.
//!
//! The analytical roofline (`ninja-model`) classifies every measured cell
//! as compute- or bandwidth-bound from *modeled* machine peaks; a
//! mis-calibrated model silently mislabels every cell. This crate grounds
//! that classification in measured hardware behavior: it opens a
//! per-thread counter *group* — cycles, instructions, LLC
//! references/misses, branch misses, stalled-cycles-backend — around a
//! measurement window and derives IPC, LLC miss rate, and an estimated
//! DRAM bandwidth from miss traffic.
//!
//! Design constraints, in order:
//!
//! 1. **Never a failure.** Containers, `perf_event_paranoid`, missing
//!    PMUs, and non-Linux/non-x86_64 hosts are all normal; every one of
//!    them degrades to [`CounterStatus::Unavailable`] with a
//!    human-readable reason, and a window over an unavailable group
//!    simply yields no sample. The measurement itself is untouched.
//! 2. **std-only.** No libc: the syscall layer is a small audited
//!    `asm!` shim (the same idiom as `pin_to_core` in `ninja-parallel`),
//!    compiled only on `linux` + `x86_64` with a stub elsewhere.
//! 3. **Honest numbers.** Counter groups can be multiplexed off-core by
//!    the kernel; reads carry `time_enabled`/`time_running` and
//!    [`CounterSample::scaled`] extrapolates (with saturation) before
//!    any ratio is derived. Degenerate denominators yield `None`, never
//!    `NaN`/`inf`.
//!
//! Forcing the fallback: setting `NINJA_COUNTERS_FORCE_UNAVAILABLE` in
//! the environment makes every open fail with a deterministic reason —
//! CI uses this to exercise the restricted path on permissive runners.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

/// Bytes moved per LLC miss: one cache line. The DRAM-bandwidth estimate
/// is `llc_misses × 64 B / elapsed`; a lower bound (write-allocate
/// traffic and prefetches the LLC-miss event does not count are missed),
/// which is the right direction for a "was the memory roof really the
/// limit?" cross-check.
pub const CACHE_LINE_BYTES: u64 = 64;

/// The environment variable that forces [`CounterStatus::Unavailable`]
/// regardless of host capability (CI fallback-path testing).
pub const FORCE_UNAVAILABLE_ENV: &str = "NINJA_COUNTERS_FORCE_UNAVAILABLE";

/// The hardware events a group measures, in slot order.
///
/// Slot order is a wire-visible contract: [`CounterSample`] fields map
/// onto these slots one-to-one.
pub const EVENT_NAMES: [&str; 6] = [
    "cycles",
    "instructions",
    "llc_refs",
    "llc_misses",
    "branch_misses",
    "stalled_backend",
];

/// Whether hardware counters could be opened, and if not, why.
///
/// `Unavailable` is an expected state (containers, hardened kernels,
/// non-Linux), not an error: callers keep their analytical attribution
/// and surface the reason verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CounterStatus {
    /// A counter group is open and produces samples.
    Available,
    /// No counters; the payload says why (errno, paranoid level, ...).
    Unavailable(String),
}

impl CounterStatus {
    /// `true` when counters are live.
    pub fn is_available(&self) -> bool {
        matches!(self, CounterStatus::Available)
    }

    /// The unavailability reason, when there is one.
    pub fn reason(&self) -> Option<&str> {
        match self {
            CounterStatus::Available => None,
            CounterStatus::Unavailable(reason) => Some(reason),
        }
    }
}

impl std::fmt::Display for CounterStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CounterStatus::Available => f.write_str("available"),
            CounterStatus::Unavailable(reason) => write!(f, "unavailable ({reason})"),
        }
    }
}

/// One window's worth of raw counter values plus the kernel's
/// enabled/running times (for multiplex scaling).
///
/// All counts are saturating accumulators: [`CounterSample::add`] and
/// [`CounterSample::scaled`] clamp at `u64::MAX` instead of wrapping, so
/// a pathological window can pin at the ceiling but never travel back
/// in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSample {
    /// Core clock cycles (`PERF_COUNT_HW_CPU_CYCLES`).
    pub cycles: u64,
    /// Retired instructions (`PERF_COUNT_HW_INSTRUCTIONS`).
    pub instructions: u64,
    /// Last-level-cache references (`PERF_COUNT_HW_CACHE_REFERENCES`).
    pub llc_refs: u64,
    /// Last-level-cache misses (`PERF_COUNT_HW_CACHE_MISSES`).
    pub llc_misses: u64,
    /// Mispredicted branches (`PERF_COUNT_HW_BRANCH_MISSES`).
    pub branch_misses: u64,
    /// Backend stall cycles (`PERF_COUNT_HW_STALLED_CYCLES_BACKEND`);
    /// zero on PMUs that do not expose the event.
    pub stalled_backend: u64,
    /// Nanoseconds the group was scheduled-or-pending on the thread.
    pub time_enabled_ns: u64,
    /// Nanoseconds the group actually counted (≤ enabled under
    /// multiplexing).
    pub time_running_ns: u64,
}

/// `a + b` clamped at the ceiling instead of wrapping.
fn sat_add(a: u64, b: u64) -> u64 {
    a.saturating_add(b)
}

/// `count × enabled ⁄ running` in 128-bit, clamped to `u64::MAX`.
fn scale_count(count: u64, enabled: u64, running: u64) -> u64 {
    if running == 0 {
        return 0;
    }
    let scaled = (count as u128) * (enabled as u128) / (running as u128);
    u64::try_from(scaled).unwrap_or(u64::MAX)
}

impl CounterSample {
    /// Extrapolates the counts to the full enabled window.
    ///
    /// The kernel time-multiplexes groups when a PMU is oversubscribed,
    /// so a group may have counted for only part of the window; the
    /// standard correction is `count × time_enabled ⁄ time_running`.
    /// Guards: `time_running == 0` (the group never ran) zeroes every
    /// count so no derived ratio can fabricate throughput from nothing;
    /// `time_running > time_enabled` (clock skew in old kernels) is
    /// treated as fully-running, i.e. the scale never shrinks a count;
    /// products saturate at `u64::MAX` instead of wrapping.
    pub fn scaled(&self) -> CounterSample {
        let enabled = self.time_enabled_ns;
        let running = self.time_running_ns;
        if running >= enabled && running > 0 {
            // Fully counted (or skewed): the raw values are the truth.
            return *self;
        }
        let scale = |count| scale_count(count, enabled, running);
        CounterSample {
            cycles: scale(self.cycles),
            instructions: scale(self.instructions),
            llc_refs: scale(self.llc_refs),
            llc_misses: scale(self.llc_misses),
            branch_misses: scale(self.branch_misses),
            stalled_backend: scale(self.stalled_backend),
            time_enabled_ns: enabled,
            time_running_ns: running,
        }
    }

    /// Instructions per cycle, `None` when no cycles were counted.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.instructions as f64 / self.cycles as f64)
    }

    /// LLC miss rate in `[0, 1]`, `None` without references.
    ///
    /// Clamped at 1.0: under heavy multiplexing misses and references
    /// come from different time slices and the raw ratio can exceed
    /// one, which would be nonsense downstream.
    pub fn llc_miss_rate(&self) -> Option<f64> {
        (self.llc_refs > 0).then(|| (self.llc_misses as f64 / self.llc_refs as f64).min(1.0))
    }

    /// Branch misses per thousand instructions, `None` without
    /// instructions.
    pub fn branch_mpki(&self) -> Option<f64> {
        (self.instructions > 0)
            .then(|| self.branch_misses as f64 * 1000.0 / self.instructions as f64)
    }

    /// Fraction of cycles stalled in the backend, in `[0, 1]`;
    /// `None` when either event is absent.
    pub fn backend_stall_frac(&self) -> Option<f64> {
        (self.cycles > 0 && self.stalled_backend > 0)
            .then(|| (self.stalled_backend as f64 / self.cycles as f64).min(1.0))
    }

    /// Estimated DRAM traffic over an explicit wall-clock window,
    /// GB/s (`llc_misses × 64 B ⁄ seconds`). `None` for degenerate
    /// windows (zero/negative/non-finite seconds).
    pub fn dram_gbs_over(&self, seconds: f64) -> Option<f64> {
        (seconds.is_finite() && seconds > 0.0)
            .then(|| self.llc_misses as f64 * CACHE_LINE_BYTES as f64 / seconds / 1e9)
    }

    /// Estimated DRAM traffic over the group's own enabled time.
    pub fn dram_gbs(&self) -> Option<f64> {
        self.dram_gbs_over(self.time_enabled_ns as f64 / 1e9)
    }

    /// Accumulates another window into this one (saturating).
    pub fn add(&mut self, other: &CounterSample) {
        self.cycles = sat_add(self.cycles, other.cycles);
        self.instructions = sat_add(self.instructions, other.instructions);
        self.llc_refs = sat_add(self.llc_refs, other.llc_refs);
        self.llc_misses = sat_add(self.llc_misses, other.llc_misses);
        self.branch_misses = sat_add(self.branch_misses, other.branch_misses);
        self.stalled_backend = sat_add(self.stalled_backend, other.stalled_backend);
        self.time_enabled_ns = sat_add(self.time_enabled_ns, other.time_enabled_ns);
        self.time_running_ns = sat_add(self.time_running_ns, other.time_running_ns);
    }

    /// Counter-wise `self - earlier`, saturating at zero — the same
    /// counter-window contract as `PoolMetrics::delta`: the fields are
    /// monotonic within one accumulation stream, and a mismatched bracket
    /// (stream reset, swapped operands) degrades to an empty window, never
    /// a wrapped near-`u64::MAX` garbage delta.
    #[must_use]
    pub fn saturating_sub(&self, earlier: &CounterSample) -> CounterSample {
        CounterSample {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            llc_refs: self.llc_refs.saturating_sub(earlier.llc_refs),
            llc_misses: self.llc_misses.saturating_sub(earlier.llc_misses),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
            stalled_backend: self.stalled_backend.saturating_sub(earlier.stalled_backend),
            time_enabled_ns: self.time_enabled_ns.saturating_sub(earlier.time_enabled_ns),
            time_running_ns: self.time_running_ns.saturating_sub(earlier.time_running_ns),
        }
    }

    /// `true` when the window counted anything at all.
    pub fn any_counted(&self) -> bool {
        self.cycles > 0 || self.instructions > 0 || self.time_running_ns > 0
    }

    /// One greppable summary line (`ipc=… llc_miss_rate=… dram_gbs=…`).
    pub fn summary(&self) -> String {
        let fmt = |v: Option<f64>, precision: usize| match v {
            Some(x) => format!("{x:.precision$}"),
            None => "-".to_owned(),
        };
        format!(
            "ipc={} llc_miss_rate={} dram_gbs={} branch_mpki={} cycles={}",
            fmt(self.ipc(), 2),
            fmt(self.llc_miss_rate().map(|r| r * 100.0), 1),
            fmt(self.dram_gbs(), 2),
            fmt(self.branch_mpki(), 2),
            self.cycles,
        )
    }
}

/// The per-thread counter group: open once, window many times.
///
/// Construction never fails — an inaccessible PMU yields a handle whose
/// [`ThreadCounters::status`] is `Unavailable` and whose windows return
/// `None`, so call sites need no platform conditionals.
pub struct ThreadCounters {
    inner: Result<imp::Group, String>,
}

impl ThreadCounters {
    /// Opens a counter group bound to the *calling* thread.
    ///
    /// The group must be windowed from the same thread it was opened on
    /// (the events are attached to this thread's PMU context).
    pub fn open() -> Self {
        if std::env::var_os(FORCE_UNAVAILABLE_ENV).is_some() {
            return ThreadCounters {
                inner: Err(format!("forced unavailable via {FORCE_UNAVAILABLE_ENV}")),
            };
        }
        ThreadCounters {
            inner: imp::Group::open(),
        }
    }

    /// Whether this handle produces samples.
    pub fn status(&self) -> CounterStatus {
        match &self.inner {
            Ok(_) => CounterStatus::Available,
            Err(reason) => CounterStatus::Unavailable(reason.clone()),
        }
    }

    /// Runs `body` with the group counting and returns its multiplexing-
    /// corrected sample; `None` when counters are unavailable or the
    /// read failed mid-run (the body's result is returned regardless).
    pub fn window<T>(&mut self, body: impl FnOnce() -> T) -> (T, Option<CounterSample>) {
        let Ok(group) = &mut self.inner else {
            return (body(), None);
        };
        if group.reset_and_enable().is_err() {
            return (body(), None);
        }
        let out = body();
        let sample = group.disable_and_read().ok().map(|s| s.scaled());
        (out, sample)
    }
}

impl std::fmt::Debug for ThreadCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCounters")
            .field("status", &self.status())
            .finish()
    }
}

/// Probes whether this process can open hardware counters right now,
/// without keeping anything open. One open/close round-trip; call it
/// once per run for reporting, not per measurement.
pub fn availability() -> CounterStatus {
    ThreadCounters::open().status()
}

/// The host's `/proc/sys/kernel/perf_event_paranoid` level, when
/// readable. Level ≤ 2 permits self-profiling with kernel samples
/// excluded (which is all this crate asks for); 3+ (a common hardening
/// patch) forbids unprivileged `perf_event_open` entirely.
pub fn paranoid_level() -> Option<i64> {
    std::fs::read_to_string("/proc/sys/kernel/perf_event_paranoid")
        .ok()?
        .trim()
        .parse()
        .ok()
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    //! The audited unsafe layer: raw `syscall` via inline asm (the same
    //! idiom as `pin_to_core` in `ninja-parallel` — no libc), a
    //! hand-laid-out `perf_event_attr`, and fd lifecycle.

    use super::CounterSample;

    const SYS_READ: u64 = 0;
    const SYS_CLOSE: u64 = 3;
    const SYS_IOCTL: u64 = 16;
    const SYS_PERF_EVENT_OPEN: u64 = 298;

    const PERF_TYPE_HARDWARE: u32 = 0;
    /// `PERF_COUNT_HW_*` config values, in [`super::EVENT_NAMES`] slot
    /// order: cycles, instructions, cache refs, cache misses, branch
    /// misses, stalled-cycles-backend.
    const EVENT_CONFIGS: [u64; 6] = [0, 1, 2, 3, 5, 8];

    const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    const PERF_FORMAT_GROUP: u64 = 1 << 3;

    /// `perf_event_attr` flag bits (first bitfield word): `disabled`,
    /// `exclude_kernel`, `exclude_hv`. Kernel and hypervisor cycles are
    /// excluded so paranoid level 2 (the common unhardened default)
    /// still admits the open.
    const ATTR_DISABLED: u64 = 1 << 0;
    const ATTR_EXCLUDE_KERNEL: u64 = 1 << 5;
    const ATTR_EXCLUDE_HV: u64 = 1 << 6;

    const PERF_FLAG_FD_CLOEXEC: u64 = 1 << 3;

    const PERF_EVENT_IOC_ENABLE: u64 = 0x2400;
    const PERF_EVENT_IOC_DISABLE: u64 = 0x2401;
    const PERF_EVENT_IOC_RESET: u64 = 0x2403;
    const PERF_IOC_FLAG_GROUP: u64 = 1;

    /// `perf_event_attr`, laid out by hand to `PERF_ATTR_SIZE_VER5`
    /// (112 bytes). Trailing fields are zero, which every kernel since
    /// the corresponding version accepts.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        bp_addr: u64,
        bp_len: u64,
        branch_sample_type: u64,
        sample_regs_user: u64,
        sample_stack_user: u32,
        clockid: i32,
        sample_regs_intr: u64,
        aux_watermark: u32,
        sample_max_stack: u16,
        reserved_2: u16,
    }

    const ATTR_SIZE: u32 = std::mem::size_of::<PerfEventAttr>() as u32;
    // The kernel rejects an attr whose size field disagrees with a known
    // revision; 112 is PERF_ATTR_SIZE_VER5.
    const _: () = assert!(ATTR_SIZE == 112);

    impl PerfEventAttr {
        fn hardware(config: u64, leader: bool) -> Self {
            let mut flags = ATTR_EXCLUDE_KERNEL | ATTR_EXCLUDE_HV;
            if leader {
                // The leader starts disabled and the whole group is
                // flipped on atomically via ioctl(ENABLE, GROUP), so no
                // slot counts setup code.
                flags |= ATTR_DISABLED;
            }
            PerfEventAttr {
                type_: PERF_TYPE_HARDWARE,
                size: ATTR_SIZE,
                config,
                sample_period: 0,
                sample_type: 0,
                read_format: PERF_FORMAT_TOTAL_TIME_ENABLED
                    | PERF_FORMAT_TOTAL_TIME_RUNNING
                    | PERF_FORMAT_GROUP,
                flags,
                wakeup_events: 0,
                bp_type: 0,
                bp_addr: 0,
                bp_len: 0,
                branch_sample_type: 0,
                sample_regs_user: 0,
                sample_stack_user: 0,
                clockid: 0,
                sample_regs_intr: 0,
                aux_watermark: 0,
                sample_max_stack: 0,
                reserved_2: 0,
            }
        }
    }

    /// Raw 5-argument syscall. Returns the kernel's value: ≥ 0 on
    /// success, `-errno` on failure.
    ///
    /// # Safety
    ///
    /// The caller must uphold the invoked syscall's own contract
    /// (pointer arguments valid for the kernel's reads/writes, fds
    /// owned by this process).
    unsafe fn syscall5(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64) -> i64 {
        let ret: i64;
        // SAFETY: x86_64 Linux syscall ABI — args in rdi/rsi/rdx/r10/r8,
        // number in rax, result in rax; the kernel clobbers rcx/r11 and
        // nothing else, and `nostack` holds because no red-zone or stack
        // memory is touched. Argument validity is the caller's contract.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr as i64 => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// One `perf_event_open(2)` for the calling thread (`pid=0`,
    /// `cpu=-1`: this thread on any CPU). Returns the fd or `-errno`.
    fn perf_event_open(attr: &PerfEventAttr, group_fd: i64) -> i64 {
        // SAFETY: `attr` is a live, properly-sized `perf_event_attr`
        // borrowed for the duration of the call (the kernel only reads
        // it); `group_fd` is either -1 or a perf fd this struct owns.
        unsafe {
            syscall5(
                SYS_PERF_EVENT_OPEN,
                attr as *const PerfEventAttr as u64,
                0,
                (-1i64) as u64,
                group_fd as u64,
                PERF_FLAG_FD_CLOEXEC,
            )
        }
    }

    /// `ioctl(fd, op, arg)`; returns `-errno` on failure.
    fn perf_ioctl(fd: i32, op: u64, arg: u64) -> i64 {
        // SAFETY: `fd` is a perf fd owned by this `Group`; the perf
        // ENABLE/DISABLE/RESET ioctls take an integer argument, not a
        // pointer, so there is no memory contract beyond the fd itself.
        unsafe { syscall5(SYS_IOCTL, fd as u64, op, arg, 0, 0) }
    }

    /// Human-readable tag for the errnos perf actually returns.
    fn errno_name(errno: i64) -> &'static str {
        match errno {
            1 => "EPERM",
            2 => "ENOENT",
            13 => "EACCES",
            16 => "EBUSY",
            19 => "ENODEV",
            22 => "EINVAL",
            24 => "EMFILE",
            95 => "EOPNOTSUPP",
            _ => "errno",
        }
    }

    /// An open per-thread counter group. `fds[0]` is the leader
    /// (cycles); `slots[i]` maps group read position `i` back to the
    /// [`super::EVENT_NAMES`] slot it counts, because optional events
    /// (stalled-backend on many PMUs) may fail to open and are then
    /// simply absent from the group.
    pub(super) struct Group {
        fds: Vec<i32>,
        slots: Vec<usize>,
    }

    impl Group {
        /// Opens the group or explains why the host cannot.
        pub(super) fn open() -> Result<Group, String> {
            let leader_attr = PerfEventAttr::hardware(EVENT_CONFIGS[0], true);
            let leader = perf_event_open(&leader_attr, -1);
            if leader < 0 {
                let errno = -leader;
                let paranoid = match super::paranoid_level() {
                    Some(level) => format!(", perf_event_paranoid={level}"),
                    None => String::new(),
                };
                return Err(format!(
                    "perf_event_open failed ({}{paranoid})",
                    errno_name(errno)
                ));
            }
            let mut group = Group {
                fds: vec![leader as i32],
                slots: vec![0],
            };
            for (slot, &config) in EVENT_CONFIGS.iter().enumerate().skip(1) {
                let attr = PerfEventAttr::hardware(config, false);
                let fd = perf_event_open(&attr, leader);
                if fd >= 0 {
                    group.fds.push(fd as i32);
                    group.slots.push(slot);
                }
                // A sibling that fails (unsupported event, PMU slot
                // pressure) is dropped: its count reads as zero and the
                // ratios that need it derive to None.
            }
            if group.slots.len() < 2 {
                // Cycles alone cannot derive anything; treat a
                // one-event group as unavailable.
                return Err("perf_event_open admitted only the cycle counter".into());
            }
            Ok(group)
        }

        /// Zeroes and starts the whole group atomically.
        pub(super) fn reset_and_enable(&mut self) -> Result<(), ()> {
            let fd = self.fds[0];
            if perf_ioctl(fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) < 0 {
                return Err(());
            }
            if perf_ioctl(fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) < 0 {
                return Err(());
            }
            Ok(())
        }

        /// Stops the group and reads every slot in one syscall.
        pub(super) fn disable_and_read(&mut self) -> Result<CounterSample, ()> {
            let fd = self.fds[0];
            if perf_ioctl(fd, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP) < 0 {
                return Err(());
            }
            // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
            // then one u64 per member in open order.
            let mut buf = [0u64; 3 + EVENT_CONFIGS.len()];
            let want = std::mem::size_of_val(&buf);
            // SAFETY: `buf` is a live, properly aligned u64 array of
            // `want` bytes, exclusively borrowed for the duration of the
            // read; the kernel writes at most `want` bytes into it.
            let n = unsafe {
                syscall5(
                    SYS_READ,
                    fd as u64,
                    buf.as_mut_ptr() as u64,
                    want as u64,
                    0,
                    0,
                )
            };
            if n < (3 * 8) as i64 {
                return Err(());
            }
            let nr = buf[0] as usize;
            if nr != self.slots.len() || (3 + nr) * 8 > n as usize {
                return Err(());
            }
            let mut sample = CounterSample {
                time_enabled_ns: buf[1],
                time_running_ns: buf[2],
                ..CounterSample::default()
            };
            for (pos, &slot) in self.slots.iter().enumerate() {
                let value = buf[3 + pos];
                match slot {
                    0 => sample.cycles = value,
                    1 => sample.instructions = value,
                    2 => sample.llc_refs = value,
                    3 => sample.llc_misses = value,
                    4 => sample.branch_misses = value,
                    _ => sample.stalled_backend = value,
                }
            }
            Ok(sample)
        }
    }

    impl Drop for Group {
        fn drop(&mut self) {
            // Close siblings before the leader: the kernel allows any
            // order, but this mirrors the open order for auditability.
            for &fd in self.fds.iter().rev() {
                // SAFETY: each fd was returned by perf_event_open and is
                // owned exclusively by this Group; nothing reads it after
                // this loop.
                unsafe {
                    syscall5(SYS_CLOSE, fd as u64, 0, 0, 0, 0);
                }
            }
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    //! Stub for hosts without the raw-syscall backend: every open
    //! degrades to `Unavailable` and nothing else compiles in.

    use super::CounterSample;

    pub(super) struct Group {
        never: std::convert::Infallible,
    }

    impl Group {
        pub(super) fn open() -> Result<Group, String> {
            Err("hardware counters need linux/x86_64 (perf_event_open backend)".into())
        }

        pub(super) fn reset_and_enable(&mut self) -> Result<(), ()> {
            match self.never {}
        }

        pub(super) fn disable_and_read(&mut self) -> Result<CounterSample, ()> {
            match self.never {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Serializes the tests that set/unset the force env var against
    /// the ones that open real groups.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn sample(
        cycles: u64,
        instructions: u64,
        refs: u64,
        misses: u64,
        enabled: u64,
        running: u64,
    ) -> CounterSample {
        CounterSample {
            cycles,
            instructions,
            llc_refs: refs,
            llc_misses: misses,
            branch_misses: 0,
            stalled_backend: 0,
            time_enabled_ns: enabled,
            time_running_ns: running,
        }
    }

    #[test]
    fn derived_metrics_compute_the_obvious_ratios() {
        let s = sample(1_000, 2_100, 100, 4, 1_000, 1_000);
        assert!((s.ipc().unwrap() - 2.1).abs() < 1e-12);
        assert!((s.llc_miss_rate().unwrap() - 0.04).abs() < 1e-12);
        // 4 misses × 64 B over 1 µs = 0.256 GB/s.
        assert!((s.dram_gbs().unwrap() - 0.256).abs() < 1e-12);
        let over = s.dram_gbs_over(2e-6).unwrap();
        assert!((over - 0.128).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_derive_to_none_not_nan() {
        let s = sample(0, 500, 0, 7, 0, 0);
        assert_eq!(s.ipc(), None);
        assert_eq!(s.llc_miss_rate(), None);
        assert_eq!(s.dram_gbs(), None);
        assert_eq!(s.dram_gbs_over(0.0), None);
        assert_eq!(s.dram_gbs_over(-1.0), None);
        assert_eq!(s.dram_gbs_over(f64::NAN), None);
        assert_eq!(s.backend_stall_frac(), None);
        let no_insns = sample(10, 0, 0, 0, 0, 0);
        assert_eq!(no_insns.branch_mpki(), None);
    }

    #[test]
    fn miss_rate_clamps_to_one_under_multiplexing_skew() {
        let s = sample(10, 10, 4, 9, 100, 100);
        assert_eq!(s.llc_miss_rate(), Some(1.0));
    }

    #[test]
    fn multiplex_scaling_extrapolates_to_the_enabled_window() {
        // Counted for half the window: every count doubles.
        let s = sample(1_000, 2_000, 100, 10, 2_000, 1_000).scaled();
        assert_eq!(s.cycles, 2_000);
        assert_eq!(s.instructions, 4_000);
        assert_eq!(s.llc_refs, 200);
        assert_eq!(s.llc_misses, 20);
        // IPC is ratio-invariant under scaling.
        assert!((s.ipc().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_never_ran_zeroes_counts() {
        let s = sample(123, 456, 7, 8, 5_000, 0).scaled();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.ipc(), None);
        assert_eq!(s.llc_miss_rate(), None);
    }

    #[test]
    fn scaling_skewed_clock_never_shrinks_counts() {
        // time_running > time_enabled (old-kernel skew): raw values win.
        let s = sample(1_000, 2_000, 10, 1, 500, 1_000);
        assert_eq!(s.scaled(), s);
    }

    #[test]
    fn scaling_saturates_instead_of_wrapping() {
        let s = sample(u64::MAX - 1, u64::MAX - 1, 0, 0, u64::MAX, 1).scaled();
        assert_eq!(s.cycles, u64::MAX);
        assert_eq!(s.instructions, u64::MAX);
    }

    #[test]
    fn accumulation_saturates_and_sums() {
        let mut acc = sample(10, 20, 3, 1, 100, 100);
        acc.add(&sample(5, 10, 2, 1, 50, 50));
        assert_eq!(acc, sample(15, 30, 5, 2, 150, 150));
        acc.add(&sample(u64::MAX, 0, 0, 0, 0, 0));
        assert_eq!(acc.cycles, u64::MAX);
    }

    #[test]
    fn window_subtraction_saturates_instead_of_wrapping() {
        let later = sample(100, 250, 30, 6, 1_000, 900);
        let earlier = sample(40, 100, 10, 2, 400, 350);
        let d = later.saturating_sub(&earlier);
        assert_eq!(d, sample(60, 150, 20, 4, 600, 550));
        // A reset stream (later < earlier) yields an empty window, never a
        // wrapped delta.
        let swapped = earlier.saturating_sub(&later);
        assert_eq!(swapped, CounterSample::default());
        assert!(!swapped.any_counted());
    }

    #[test]
    fn summary_is_greppable_and_dashes_when_empty() {
        let s = sample(1_000, 2_100, 100, 4, 1_000, 1_000);
        let line = s.summary();
        assert!(line.contains("ipc=2.10"), "{line}");
        assert!(line.contains("llc_miss_rate=4.0"), "{line}");
        let empty = CounterSample::default().summary();
        assert!(empty.contains("ipc=-"), "{empty}");
    }

    #[test]
    fn status_renders_reason_and_availability() {
        assert!(CounterStatus::Available.is_available());
        assert_eq!(CounterStatus::Available.reason(), None);
        let s = CounterStatus::Unavailable("nope".into());
        assert!(!s.is_available());
        assert_eq!(s.reason(), Some("nope"));
        assert_eq!(s.to_string(), "unavailable (nope)");
    }

    #[test]
    fn open_yields_samples_or_an_explicit_reason() {
        let _guard = ENV_LOCK.lock().unwrap();
        let mut counters = ThreadCounters::open();
        let status = counters.status();
        let (out, sample) = counters.window(|| {
            // Enough work that a live counter must see cycles.
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        assert_ne!(out, 1); // the body really ran
        match status {
            CounterStatus::Available => {
                let s = sample.expect("available counters must produce a window sample");
                assert!(s.any_counted(), "{s:?}");
                assert!(s.ipc().is_some(), "{s:?}");
            }
            CounterStatus::Unavailable(reason) => {
                assert!(!reason.is_empty());
                assert_eq!(sample, None);
            }
        }
    }

    #[test]
    fn force_env_degrades_with_a_deterministic_reason() {
        let _guard = ENV_LOCK.lock().unwrap();
        // ENV_LOCK serializes every test that reads or writes this
        // variable, so no concurrent getenv can race the mutation.
        std::env::set_var(FORCE_UNAVAILABLE_ENV, "1");
        let mut counters = ThreadCounters::open();
        let status = counters.status();
        std::env::remove_var(FORCE_UNAVAILABLE_ENV);
        assert_eq!(
            status.reason(),
            Some(format!("forced unavailable via {FORCE_UNAVAILABLE_ENV}").as_str())
        );
        let (out, sample) = counters.window(|| 42);
        assert_eq!(out, 42);
        assert_eq!(sample, None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Scaling and derivation never produce NaN/inf/negative values
        /// and IPC/miss-rate stay within their documented ranges.
        #[test]
        fn derivations_stay_finite_and_in_range(
            cycles in 0u64..u64::MAX,
            instructions in 0u64..u64::MAX,
            refs in 0u64..u64::MAX,
            misses in 0u64..u64::MAX,
            enabled in 0u64..u64::MAX,
            running in 0u64..u64::MAX,
        ) {
            let s = sample(cycles, instructions, refs, misses, enabled, running).scaled();
            if let Some(ipc) = s.ipc() {
                prop_assert!(ipc.is_finite() && ipc >= 0.0);
            }
            if let Some(rate) = s.llc_miss_rate() {
                prop_assert!((0.0..=1.0).contains(&rate));
            }
            if let Some(gbs) = s.dram_gbs() {
                prop_assert!(gbs.is_finite() && gbs >= 0.0);
            }
            // Scaling only ever extrapolates upward (or zeroes a
            // never-ran window) — it cannot shrink a count.
            let raw = sample(cycles, instructions, refs, misses, enabled, running);
            if s.time_running_ns > 0 {
                prop_assert!(s.cycles >= raw.cycles || s.cycles == u64::MAX);
            }
        }

        /// Accumulation is monotone in every field.
        #[test]
        fn accumulation_is_monotone(
            a in 0u64..1u64 << 62,
            b in 0u64..1u64 << 62,
            c in 0u64..1u64 << 62,
        ) {
            let mut acc = sample(a, b, c, a, b, c);
            let before = acc;
            acc.add(&sample(c, a, b, c, a, b));
            prop_assert!(acc.cycles >= before.cycles);
            prop_assert!(acc.instructions >= before.instructions);
            prop_assert!(acc.llc_refs >= before.llc_refs);
            prop_assert!(acc.time_enabled_ns >= before.time_enabled_ns);
        }
    }
}
