//! Property tests: every SIMD operation must agree lane-exactly with the
//! corresponding scalar operation (or within documented tolerance for the
//! approximate transcendentals).

use ninja_simd::{math, F32x4, F64x2, I32x4, Mask32x4};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Stay inside a range where f32 arithmetic cannot overflow in one op.
    (-1e18f32..1e18f32).prop_filter("finite", |x| x.is_finite())
}

fn small_f32() -> impl Strategy<Value = f32> {
    -1e4f32..1e4f32
}

proptest! {
    #[test]
    fn add_matches_scalar(a in prop::array::uniform4(finite_f32()), b in prop::array::uniform4(finite_f32())) {
        let v = (F32x4::from_array(a) + F32x4::from_array(b)).to_array();
        for i in 0..4 {
            prop_assert_eq!(v[i], a[i] + b[i]);
        }
    }

    #[test]
    fn sub_mul_match_scalar(a in prop::array::uniform4(small_f32()), b in prop::array::uniform4(small_f32())) {
        let va = F32x4::from_array(a);
        let vb = F32x4::from_array(b);
        let s = (va - vb).to_array();
        let m = (va * vb).to_array();
        for i in 0..4 {
            prop_assert_eq!(s[i], a[i] - b[i]);
            prop_assert_eq!(m[i], a[i] * b[i]);
        }
    }

    #[test]
    fn min_max_match_scalar(a in prop::array::uniform4(finite_f32()), b in prop::array::uniform4(finite_f32())) {
        let va = F32x4::from_array(a);
        let vb = F32x4::from_array(b);
        let mn = va.min(vb).to_array();
        let mx = va.max(vb).to_array();
        for i in 0..4 {
            prop_assert_eq!(mn[i], if a[i] < b[i] { a[i] } else { b[i] });
            prop_assert_eq!(mx[i], if a[i] > b[i] { a[i] } else { b[i] });
        }
    }

    #[test]
    fn comparisons_match_scalar(a in prop::array::uniform4(small_f32()), b in prop::array::uniform4(small_f32())) {
        let va = F32x4::from_array(a);
        let vb = F32x4::from_array(b);
        for i in 0..4 {
            prop_assert_eq!(va.simd_lt(vb).lane(i), a[i] < b[i]);
            prop_assert_eq!(va.simd_le(vb).lane(i), a[i] <= b[i]);
            prop_assert_eq!(va.simd_gt(vb).lane(i), a[i] > b[i]);
            prop_assert_eq!(va.simd_ge(vb).lane(i), a[i] >= b[i]);
            prop_assert_eq!(va.simd_eq(vb).lane(i), a[i] == b[i]);
        }
    }

    #[test]
    fn select_matches_branch(
        m in prop::array::uniform4(any::<bool>()),
        t in prop::array::uniform4(small_f32()),
        f in prop::array::uniform4(small_f32()),
    ) {
        let mask = Mask32x4::from_bools(m[0], m[1], m[2], m[3]);
        let sel = mask.select(F32x4::from_array(t), F32x4::from_array(f)).to_array();
        for i in 0..4 {
            prop_assert_eq!(sel[i], if m[i] { t[i] } else { f[i] });
        }
    }

    #[test]
    fn reduce_sum_is_pairwise(a in prop::array::uniform4(small_f32())) {
        let got = F32x4::from_array(a).reduce_sum();
        let want = (a[0] + a[1]) + (a[2] + a[3]);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn floor_matches_scalar(a in prop::array::uniform4(-1e6f32..1e6f32)) {
        let got = F32x4::from_array(a).floor().to_array();
        for i in 0..4 {
            prop_assert_eq!(got[i], a[i].floor());
        }
    }

    #[test]
    fn i32_ops_match_scalar(a in prop::array::uniform4(any::<i32>()), b in prop::array::uniform4(any::<i32>())) {
        let va = I32x4::from_array(a);
        let vb = I32x4::from_array(b);
        let add = (va + vb).to_array();
        let sub = (va - vb).to_array();
        let mul = (va * vb).to_array();
        for i in 0..4 {
            prop_assert_eq!(add[i], a[i].wrapping_add(b[i]));
            prop_assert_eq!(sub[i], a[i].wrapping_sub(b[i]));
            prop_assert_eq!(mul[i], a[i].wrapping_mul(b[i]));
            prop_assert_eq!(va.simd_gt(vb).lane(i), a[i] > b[i]);
            prop_assert_eq!(va.min(vb).to_array()[i], a[i].min(b[i]));
            prop_assert_eq!(va.max(vb).to_array()[i], a[i].max(b[i]));
        }
    }

    #[test]
    fn i32_shifts_match_scalar(a in prop::array::uniform4(any::<i32>()), s in 0i32..31) {
        let va = I32x4::from_array(a);
        let shl = (va << s).to_array();
        let shr = (va >> s).to_array();
        for i in 0..4 {
            prop_assert_eq!(shl[i], a[i].wrapping_shl(s as u32));
            prop_assert_eq!(shr[i], a[i] >> s);
        }
    }

    #[test]
    fn gather_matches_indexing(data in prop::collection::vec(small_f32(), 4..64), raw in prop::array::uniform4(0usize..1000)) {
        let idx: Vec<i32> = raw.iter().map(|r| (r % data.len()) as i32).collect();
        let g = F32x4::gather(&data, I32x4::new(idx[0], idx[1], idx[2], idx[3])).to_array();
        for i in 0..4 {
            prop_assert_eq!(g[i], data[idx[i] as usize]);
        }
    }

    #[test]
    fn exp_within_tolerance(x in -80.0f32..80.0) {
        let got = math::exp_v4(F32x4::splat(x)).lane(0);
        let want = x.exp();
        let rel = (got - want).abs() / want.max(1e-30);
        prop_assert!(rel < 3e-6, "x={} got={} want={} rel={}", x, got, want, rel);
    }

    #[test]
    fn ln_within_tolerance(x in 1e-30f32..1e30) {
        let got = math::ln_v4(F32x4::splat(x)).lane(0);
        let want = x.ln();
        let err = (got - want).abs() / want.abs().max(1.0);
        prop_assert!(err < 3e-6, "x={} got={} want={} err={}", x, got, want, err);
    }

    #[test]
    fn norm_cdf_monotone_and_bounded(a in -12.0f32..12.0, b in -12.0f32..12.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ylo = math::norm_cdf_v4(F32x4::splat(lo)).lane(0);
        let yhi = math::norm_cdf_v4(F32x4::splat(hi)).lane(0);
        prop_assert!((0.0..=1.0).contains(&ylo));
        prop_assert!((0.0..=1.0).contains(&yhi));
        // Allow tiny non-monotonicity from f32 rounding of the approximation.
        prop_assert!(yhi >= ylo - 2e-6, "lo={} hi={} ylo={} yhi={}", lo, hi, ylo, yhi);
    }

    #[test]
    fn f64x2_ops_match_scalar(a in prop::array::uniform2(-1e12f64..1e12), b in prop::array::uniform2(-1e12f64..1e12)) {
        let va = F64x2::from_array(a);
        let vb = F64x2::from_array(b);
        prop_assert_eq!((va + vb).to_array(), [a[0] + b[0], a[1] + b[1]]);
        prop_assert_eq!((va * vb).to_array(), [a[0] * b[0], a[1] * b[1]]);
        prop_assert_eq!((va - vb).to_array(), [a[0] - b[0], a[1] - b[1]]);
    }

    #[test]
    fn bits_roundtrip(a in prop::array::uniform4(finite_f32())) {
        let v = F32x4::from_array(a);
        let rt = F32x4::from_bits(v.to_bits()).to_array();
        prop_assert_eq!(rt, a);
    }
}
