//! Tail-handling edge tests: masked loads/stores and `first_n_mask` at
//! n = 0, n < lanes, n = lanes-1, n = lanes, n = lanes+1 (clamped), on
//! deliberately unaligned buffers, asserting correct partial results and
//! that lanes outside the mask never touch memory (sentinel values
//! around the window must survive, and source/destination slices are
//! exactly the window so an out-of-bounds access would be out of the
//! allocation).

use ninja_simd::isa::{available_kinds, dispatch_on, Isa, IsaOp, SimdF32, SimdF64, SimdMask};

/// Loads `n` elements from an unaligned window and stores them back into
/// a sentinel-filled destination at a different unaligned offset.
struct PartialRoundtrip {
    n: usize,
    src_offset: usize,
    dst_offset: usize,
}

/// (lanes, loaded lanes, destination buffer after the masked store).
type RoundtripReport = (usize, Vec<f32>, Vec<f32>);

impl IsaOp for PartialRoundtrip {
    type Output = RoundtripReport;
    fn run<I: Isa>(self) -> RoundtripReport {
        let lanes = <I::F32 as SimdF32>::LANES;
        // Source allocation ends exactly at the window: a read past the
        // n requested elements would run off the heap allocation.
        let src: Vec<f32> = (0..self.src_offset + self.n)
            .map(|i| 100.0 + i as f32)
            .collect();
        let v = I::F32::load_partial(&src[self.src_offset..]);

        let mut loaded = vec![0.0f32; lanes];
        v.store(&mut loaded);

        let mut dst = vec![-1.0f32; self.dst_offset + self.n];
        v.store_partial(&mut dst[self.dst_offset..]);
        (lanes, loaded, dst)
    }
}

#[test]
fn load_store_partial_handle_every_tail_length() {
    for kind in available_kinds() {
        let lanes = kind.width_bits() / 32;
        // n = 0, 1, lanes-1, lanes, lanes+1 (deduped; +1 exercises the
        // clamp), each at element-unaligned source/destination offsets
        // so no 16/32-byte-aligned fast path can hide a masking bug.
        let mut ns = vec![0, 1, lanes.saturating_sub(1), lanes, lanes + 1];
        ns.dedup();
        for n in ns {
            for (so, doff) in [(0, 1), (1, 0), (1, 3), (3, 1)] {
                let (got_lanes, loaded, dst) = dispatch_on(
                    kind,
                    PartialRoundtrip {
                        n,
                        src_offset: so,
                        dst_offset: doff,
                    },
                );
                assert_eq!(got_lanes, lanes);
                let kept = n.min(lanes);
                for (i, l) in loaded.iter().enumerate().take(kept) {
                    let want = 100.0 + (so + i) as f32;
                    assert_eq!(*l, want, "{kind} n={n} src_offset={so}: lane {i}");
                }
                for (i, l) in loaded.iter().enumerate().skip(kept) {
                    assert_eq!(*l, 0.0, "{kind} n={n}: lane {i} must load as zero");
                }
                // Destination: sentinels before the window and past the
                // masked lanes must survive untouched.
                for (i, d) in dst.iter().enumerate() {
                    if i >= doff && i < doff + kept {
                        let want = 100.0 + (so + i - doff) as f32;
                        assert_eq!(*d, want, "{kind} n={n} dst[{i}]");
                    } else {
                        assert_eq!(*d, -1.0, "{kind} n={n}: dst[{i}] sentinel clobbered");
                    }
                }
            }
        }
    }
}

struct MaskShape {
    n: usize,
}

/// (lanes, per-lane truth values, count, any, all) for `first_n(n)`.
type MaskReport = (usize, Vec<bool>, u32, bool, bool);

impl IsaOp for MaskShape {
    type Output = MaskReport;
    fn run<I: Isa>(self) -> MaskReport {
        let lanes = <I::M32 as SimdMask>::LANES;
        let m = I::F32::first_n_mask(self.n);
        let bits: Vec<bool> = (0..lanes).map(|i| m.test(i)).collect();
        (lanes, bits, m.count(), m.any(), m.all())
    }
}

#[test]
fn first_n_mask_shape_at_every_boundary() {
    for kind in available_kinds() {
        for n in 0..=(kind.width_bits() / 32 + 1) {
            let (lanes, bits, count, any, all) = dispatch_on(kind, MaskShape { n });
            let kept = n.min(lanes);
            for (i, bit) in bits.iter().enumerate() {
                assert_eq!(*bit, i < kept, "{kind} first_n({n}) lane {i}");
            }
            assert_eq!(count as usize, kept, "{kind} first_n({n}) count");
            assert_eq!(any, kept > 0, "{kind} first_n({n}) any");
            assert_eq!(all, kept == lanes, "{kind} first_n({n}) all");
        }
    }
}

struct MaskAlgebra;

impl IsaOp for MaskAlgebra {
    type Output = ();
    fn run<I: Isa>(self) {
        let lanes = <I::M32 as SimdMask>::LANES;
        for n in 0..=lanes {
            let m = I::M32::first_n(n);
            let inv = m.not();
            for i in 0..lanes {
                assert!(!m.and(inv).test(i), "n={n} and lane {i}");
                assert!(m.or(inv).test(i), "n={n} or lane {i}");
            }
            assert_eq!(m.and(inv).count(), 0);
            assert_eq!(m.or(inv).count() as usize, lanes);
            assert_eq!(inv.count() as usize, lanes - n);
        }
        assert!(I::M32::none().not().all());
        assert!(!I::M32::all_true().not().any());
    }
}

#[test]
fn mask_boolean_algebra_holds_per_backend() {
    for kind in available_kinds() {
        dispatch_on(kind, MaskAlgebra);
    }
}

/// The f64 side: masked load/store with the 64-bit mask type.
struct PartialF64 {
    n: usize,
    offset: usize,
}

impl IsaOp for PartialF64 {
    type Output = (usize, Vec<f64>);
    fn run<I: Isa>(self) -> (usize, Vec<f64>) {
        let lanes = <I::F64 as SimdF64>::LANES;
        let src: Vec<f64> = (0..self.offset + self.n).map(|i| 7.0 + i as f64).collect();
        let kept = self.n.min(lanes);
        let mask = I::F64::first_n_mask(self.n);
        // SAFETY: the mask enables exactly `kept <= n` lanes, all inside
        // the slice starting at `offset`.
        let v = unsafe { I::F64::load_ptr_mask(src[self.offset..].as_ptr(), mask) };
        let mut dst = vec![-2.0f64; self.offset + lanes];
        // SAFETY: the destination window holds `lanes >= kept` elements.
        unsafe { v.store_ptr_mask(dst[self.offset..].as_mut_ptr(), I::F64::first_n_mask(kept)) };
        (lanes, dst)
    }
}

#[test]
fn f64_masked_roundtrip_preserves_sentinels() {
    for kind in available_kinds() {
        let lanes = kind.width_bits() / 64;
        for n in 0..=lanes + 1 {
            for offset in [0usize, 1, 3] {
                let (got_lanes, dst) = dispatch_on(kind, PartialF64 { n, offset });
                assert_eq!(got_lanes, lanes.max(1));
                let kept = n.min(got_lanes);
                for (i, d) in dst.iter().enumerate() {
                    if i >= offset && i < offset + kept {
                        assert_eq!(*d, 7.0 + i as f64, "{kind} f64 n={n} dst[{i}]");
                    } else {
                        assert_eq!(*d, -2.0, "{kind} f64 n={n}: dst[{i}] clobbered");
                    }
                }
            }
        }
    }
}
