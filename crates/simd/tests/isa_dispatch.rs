//! `NINJA_ISA` environment-override tests, isolated in their own test
//! binary because they mutate the process environment. A single #[test]
//! keeps the mutations sequenced.

use ninja_simd::isa::{
    available_kinds, detect_best, dispatch, resolve_from_env, Isa, IsaKind, IsaOp, SimdF32,
    NINJA_ISA_ENV,
};

struct WidthProbe;
impl IsaOp for WidthProbe {
    type Output = usize;
    fn run<I: Isa>(self) -> usize {
        <I::F32 as SimdF32>::LANES * 32
    }
}

#[test]
fn env_override_sequencing() {
    // Unset: auto-detection.
    std::env::remove_var(NINJA_ISA_ENV);
    assert_eq!(resolve_from_env(), Ok(detect_best()));

    // Empty and whitespace: still auto-detection.
    std::env::set_var(NINJA_ISA_ENV, "");
    assert_eq!(resolve_from_env(), Ok(detect_best()));
    std::env::set_var(NINJA_ISA_ENV, "  ");
    assert_eq!(resolve_from_env(), Ok(detect_best()));

    // Every available backend can be named (with surrounding spaces and
    // mixed case) and resolves to itself.
    for kind in available_kinds() {
        std::env::set_var(NINJA_ISA_ENV, format!(" {} ", kind.name().to_uppercase()));
        assert_eq!(resolve_from_env(), Ok(kind), "override {}", kind.name());
    }

    // Unknown names error with the expected-values hint.
    std::env::set_var(NINJA_ISA_ENV, "mmx");
    let err = resolve_from_env().unwrap_err();
    assert!(err.contains("unknown ISA backend"), "got: {err}");
    assert!(err.contains("mmx"), "got: {err}");

    // A real backend the host cannot run errors cleanly, listing what
    // it can run instead.
    let foreign = if cfg!(target_arch = "aarch64") {
        "sse2"
    } else {
        "neon"
    };
    std::env::set_var(NINJA_ISA_ENV, foreign);
    let err = resolve_from_env().unwrap_err();
    assert!(err.contains("not available"), "got: {err}");
    assert!(err.contains("scalar"), "got: {err}");

    // `active()` (used by `dispatch`) caches its first resolution; with
    // the scalar override in place before any dispatch in this process,
    // the dispatched width must be the scalar width.
    std::env::set_var(NINJA_ISA_ENV, "scalar");
    assert_eq!(dispatch(WidthProbe), 32);
    assert_eq!(IsaKind::Scalar.width_bits(), 32);

    std::env::remove_var(NINJA_ISA_ENV);
}
