//! Cross-ISA differential conformance suite.
//!
//! Every `Isa` operation is property-tested on each backend reachable on
//! this host against the one-lane `Scalar` reference:
//!
//! * `i32` operations must agree bit-for-bit;
//! * `f32`/`f64` lane operations other than `mul_add` must agree
//!   bit-for-bit, including NaN and infinity propagation (NaN payloads
//!   are not compared — any NaN matches any NaN);
//! * `mul_add` must land within 2 ULP of either the fused or the
//!   unfused scalar reference (backends differ in FMA contraction);
//! * width-dependent operations (reductions, interleave) are checked
//!   per backend against a lane-count-parameterized scalar model.
//!
//! Buffers are `LCM(1, 2, 4, 8) = 8` elements so every backend covers
//! them with whole vectors.

use ninja_simd::isa::{
    available_kinds, dispatch_on, Isa, IsaKind, IsaOp, SimdF32, SimdF64, SimdI32,
};
use proptest::prelude::*;

const N: usize = 8;

fn same_f32(a: f32, b: f32) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

fn same_f64(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// ULP distance between two finite same-sign-comparable f32 values.
fn ulp_diff_f32(a: f32, b: f32) -> u32 {
    if same_f32(a, b) {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    let to_ordered = |x: f32| {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

fn ulp_diff_f64(a: f64, b: f64) -> u64 {
    if same_f64(a, b) {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let to_ordered = |x: f64| {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

/// f32 values including the edge cases the contract covers: NaN, both
/// infinities, both zeros, subnormals, and arbitrary finite bit
/// patterns across the whole dynamic range.
fn wild_f32() -> impl Strategy<Value = f32> {
    any::<u64>().prop_map(|bits| match bits % 12 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f32::MIN_POSITIVE / 2.0, // subnormal
        6 => f32::MAX,
        _ => {
            let x = f32::from_bits((bits >> 32) as u32);
            if x.is_finite() {
                x
            } else {
                (bits >> 40) as f32 * 1e-3 - 8e3
            }
        }
    })
}

fn wild_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| match bits % 10 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        _ => {
            let x = f64::from_bits(bits.rotate_left(17));
            if x.is_finite() {
                x
            } else {
                (bits >> 20) as f64 * 1e-6
            }
        }
    })
}

#[derive(Copy, Clone, Debug)]
enum F32Op {
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Min,
    Max,
    Abs,
    Sqrt,
    SelEq,
    SelLt,
    SelLe,
    SelGt,
    SelGe,
    BitsRoundtrip,
}

const F32_OPS: [F32Op; 15] = [
    F32Op::Add,
    F32Op::Sub,
    F32Op::Mul,
    F32Op::Div,
    F32Op::Neg,
    F32Op::Min,
    F32Op::Max,
    F32Op::Abs,
    F32Op::Sqrt,
    F32Op::SelEq,
    F32Op::SelLt,
    F32Op::SelLe,
    F32Op::SelGt,
    F32Op::SelGe,
    F32Op::BitsRoundtrip,
];

/// Applies one lane-wise f32 op across an N-element buffer at the
/// backend's native width.
struct ApplyF32 {
    op: F32Op,
    a: [f32; N],
    b: [f32; N],
    c: [f32; N],
}

impl IsaOp for ApplyF32 {
    type Output = Vec<f32>;
    fn run<I: Isa>(self) -> Vec<f32> {
        let lanes = <I::F32 as SimdF32>::LANES;
        let mut out = vec![0.0f32; N];
        for k in (0..N).step_by(lanes) {
            let a = I::F32::load(&self.a[k..]);
            let b = I::F32::load(&self.b[k..]);
            let c = I::F32::load(&self.c[k..]);
            let r = match self.op {
                F32Op::Add => a + b,
                F32Op::Sub => a - b,
                F32Op::Mul => a * b,
                F32Op::Div => a / b,
                F32Op::Neg => -a,
                F32Op::Min => a.min(b),
                F32Op::Max => a.max(b),
                F32Op::Abs => a.abs(),
                F32Op::Sqrt => a.abs().sqrt(),
                F32Op::SelEq => I::F32::select(a.simd_eq(b), c, a),
                F32Op::SelLt => I::F32::select(a.simd_lt(b), c, a),
                F32Op::SelLe => I::F32::select(a.simd_le(b), c, a),
                F32Op::SelGt => I::F32::select(a.simd_gt(b), c, a),
                F32Op::SelGe => I::F32::select(a.simd_ge(b), c, a),
                F32Op::BitsRoundtrip => I::F32::from_bits(a.to_bits()),
            };
            r.store(&mut out[k..]);
        }
        out
    }
}

proptest! {
    #[test]
    fn f32_lanewise_ops_match_scalar_bitwise(
        a in prop::array::uniform8(wild_f32()),
        b in prop::array::uniform8(wild_f32()),
        c in prop::array::uniform8(wild_f32()),
    ) {
        for op in F32_OPS {
            let want = dispatch_on(IsaKind::Scalar, ApplyF32 { op, a, b, c });
            for kind in available_kinds() {
                let got = dispatch_on(kind, ApplyF32 { op, a, b, c });
                for i in 0..N {
                    prop_assert!(
                        same_f32(got[i], want[i]),
                        "{kind} {op:?} lane {i}: a={} b={} c={} got={} ({:#010x}) want={} ({:#010x})",
                        a[i], b[i], c[i], got[i], got[i].to_bits(), want[i], want[i].to_bits()
                    );
                }
            }
        }
    }
}

struct MulAddF32 {
    a: [f32; N],
    b: [f32; N],
    c: [f32; N],
}

impl IsaOp for MulAddF32 {
    type Output = Vec<f32>;
    fn run<I: Isa>(self) -> Vec<f32> {
        let lanes = <I::F32 as SimdF32>::LANES;
        let mut out = vec![0.0f32; N];
        for k in (0..N).step_by(lanes) {
            let a = I::F32::load(&self.a[k..]);
            let b = I::F32::load(&self.b[k..]);
            let c = I::F32::load(&self.c[k..]);
            a.mul_add(b, c).store(&mut out[k..]);
        }
        out
    }
}

proptest! {
    #[test]
    fn f32_mul_add_within_2ulp_of_either_reference(
        a in prop::array::uniform8(wild_f32()),
        b in prop::array::uniform8(wild_f32()),
        c in prop::array::uniform8(wild_f32()),
    ) {
        for kind in available_kinds() {
            let got = dispatch_on(kind, MulAddF32 { a, b, c });
            for i in 0..N {
                let fused = a[i].mul_add(b[i], c[i]);
                let unfused = a[i] * b[i] + c[i];
                let ok = ulp_diff_f32(got[i], fused) <= 2 || ulp_diff_f32(got[i], unfused) <= 2;
                prop_assert!(
                    ok,
                    "{kind} lane {i}: {}*{}+{} got {} (fused {}, unfused {})",
                    a[i], b[i], c[i], got[i], fused, unfused
                );
            }
        }
    }
}

#[derive(Copy, Clone, Debug)]
enum RangedOp {
    Floor,
    Trunc,
    FromI32,
}

/// Ops whose SSE2 lowering converts through i32: tested on a reduced
/// range where the contract guarantees agreement.
struct ApplyRanged {
    op: RangedOp,
    a: [f32; N],
}

impl IsaOp for ApplyRanged {
    type Output = Vec<f32>;
    fn run<I: Isa>(self) -> Vec<f32> {
        let lanes = <I::F32 as SimdF32>::LANES;
        let mut out = vec![0.0f32; N];
        for k in (0..N).step_by(lanes) {
            let a = I::F32::load(&self.a[k..]);
            let r = match self.op {
                RangedOp::Floor => a.floor(),
                RangedOp::Trunc => I::F32::from_i32(a.to_i32_trunc()),
                RangedOp::FromI32 => I::F32::from_i32(a.to_i32_trunc() + I::I32::splat(3)),
            };
            r.store(&mut out[k..]);
        }
        out
    }
}

proptest! {
    #[test]
    fn f32_floor_and_i32_conversions_match_scalar_in_range(
        a in prop::array::uniform8(-1e9f32..1e9f32),
    ) {
        for op in [RangedOp::Floor, RangedOp::Trunc, RangedOp::FromI32] {
            let want = dispatch_on(IsaKind::Scalar, ApplyRanged { op, a });
            for kind in available_kinds() {
                let got = dispatch_on(kind, ApplyRanged { op, a });
                for i in 0..N {
                    prop_assert!(
                        same_f32(got[i], want[i]),
                        "{kind} {op:?} lane {i}: x={} got={} want={}",
                        a[i], got[i], want[i]
                    );
                }
            }
        }
    }
}

#[derive(Copy, Clone, Debug)]
enum I32Op {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Shl,
    Shr,
    Min,
    Max,
    SelEq,
    SelGt,
    SelLt,
}

const I32_OPS: [I32Op; 12] = [
    I32Op::Add,
    I32Op::Sub,
    I32Op::Mul,
    I32Op::And,
    I32Op::Or,
    I32Op::Shl,
    I32Op::Shr,
    I32Op::Min,
    I32Op::Max,
    I32Op::SelEq,
    I32Op::SelGt,
    I32Op::SelLt,
];

struct ApplyI32 {
    op: I32Op,
    a: [i32; N],
    b: [i32; N],
    shift: i32,
}

impl IsaOp for ApplyI32 {
    type Output = Vec<i32>;
    fn run<I: Isa>(self) -> Vec<i32> {
        let lanes = <I::I32 as SimdI32>::LANES;
        let mut out = vec![0i32; N];
        for k in (0..N).step_by(lanes) {
            let a = I::I32::load(&self.a[k..]);
            let b = I::I32::load(&self.b[k..]);
            let r = match self.op {
                I32Op::Add => a + b,
                I32Op::Sub => a - b,
                I32Op::Mul => a * b,
                I32Op::And => a & b,
                I32Op::Or => a | b,
                I32Op::Shl => a << self.shift,
                I32Op::Shr => a >> self.shift,
                I32Op::Min => a.min(b),
                I32Op::Max => a.max(b),
                I32Op::SelEq => I::I32::select(a.simd_eq(b), a, b),
                I32Op::SelGt => I::I32::select(a.simd_gt(b), a, b),
                I32Op::SelLt => I::I32::select(a.simd_lt(b), a, b),
            };
            r.store(&mut out[k..]);
        }
        out
    }
}

proptest! {
    #[test]
    fn i32_ops_match_scalar_exactly(
        a in prop::array::uniform8(any::<i32>()),
        b in prop::array::uniform8(any::<i32>()),
        shift in 0i32..32,
    ) {
        for op in I32_OPS {
            let want = dispatch_on(IsaKind::Scalar, ApplyI32 { op, a, b, shift });
            for kind in available_kinds() {
                let got = dispatch_on(kind, ApplyI32 { op, a, b, shift });
                prop_assert_eq!(
                    &got, &want,
                    "{} {:?} (shift={}) a={:?} b={:?}", kind, op, shift, a, b
                );
            }
        }
    }
}

#[derive(Copy, Clone, Debug)]
enum F64Op {
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Min,
    Max,
    Abs,
    Sqrt,
    SelLt,
    SelGt,
}

const F64_OPS: [F64Op; 11] = [
    F64Op::Add,
    F64Op::Sub,
    F64Op::Mul,
    F64Op::Div,
    F64Op::Neg,
    F64Op::Min,
    F64Op::Max,
    F64Op::Abs,
    F64Op::Sqrt,
    F64Op::SelLt,
    F64Op::SelGt,
];

struct ApplyF64 {
    op: F64Op,
    a: [f64; N],
    b: [f64; N],
}

impl IsaOp for ApplyF64 {
    type Output = Vec<f64>;
    fn run<I: Isa>(self) -> Vec<f64> {
        let lanes = <I::F64 as SimdF64>::LANES;
        let mut out = vec![0.0f64; N];
        for k in (0..N).step_by(lanes) {
            let a = I::F64::load(&self.a[k..]);
            let b = I::F64::load(&self.b[k..]);
            let r = match self.op {
                F64Op::Add => a + b,
                F64Op::Sub => a - b,
                F64Op::Mul => a * b,
                F64Op::Div => a / b,
                F64Op::Neg => -a,
                F64Op::Min => a.min(b),
                F64Op::Max => a.max(b),
                F64Op::Abs => a.abs(),
                F64Op::Sqrt => a.abs().sqrt(),
                F64Op::SelLt => I::F64::select(a.simd_lt(b), a, b),
                F64Op::SelGt => I::F64::select(a.simd_gt(b), a, b),
            };
            r.store(&mut out[k..]);
        }
        out
    }
}

proptest! {
    #[test]
    fn f64_lanewise_ops_match_scalar_bitwise(
        a in prop::array::uniform8(wild_f64()),
        b in prop::array::uniform8(wild_f64()),
    ) {
        for op in F64_OPS {
            let want = dispatch_on(IsaKind::Scalar, ApplyF64 { op, a, b });
            for kind in available_kinds() {
                let got = dispatch_on(kind, ApplyF64 { op, a, b });
                for i in 0..N {
                    prop_assert!(
                        same_f64(got[i], want[i]),
                        "{kind} {op:?} lane {i}: a={} b={} got={} want={}",
                        a[i], b[i], got[i], want[i]
                    );
                }
            }
        }
    }

    #[test]
    fn f64_mul_add_within_2ulp_of_either_reference(
        a in prop::array::uniform8(wild_f64()),
        b in prop::array::uniform8(wild_f64()),
        c in prop::array::uniform8(wild_f64()),
    ) {
        struct Op { a: [f64; N], b: [f64; N], c: [f64; N] }
        impl IsaOp for Op {
            type Output = Vec<f64>;
            fn run<I: Isa>(self) -> Vec<f64> {
                let lanes = <I::F64 as SimdF64>::LANES;
                let mut out = vec![0.0f64; N];
                for k in (0..N).step_by(lanes) {
                    let a = I::F64::load(&self.a[k..]);
                    let b = I::F64::load(&self.b[k..]);
                    let c = I::F64::load(&self.c[k..]);
                    a.mul_add(b, c).store(&mut out[k..]);
                }
                out
            }
        }
        for kind in available_kinds() {
            let got = dispatch_on(kind, Op { a, b, c });
            for i in 0..N {
                let fused = a[i].mul_add(b[i], c[i]);
                let unfused = a[i] * b[i] + c[i];
                let ok = ulp_diff_f64(got[i], fused) <= 2 || ulp_diff_f64(got[i], unfused) <= 2;
                prop_assert!(
                    ok,
                    "{kind} lane {i}: {}*{}+{} got {} (fused {}, unfused {})",
                    a[i], b[i], c[i], got[i], fused, unfused
                );
            }
        }
    }
}

struct GatherOp {
    table: Vec<f32>,
    idx: [i32; N],
}

impl IsaOp for GatherOp {
    type Output = Vec<f32>;
    fn run<I: Isa>(self) -> Vec<f32> {
        let lanes = <I::F32 as SimdF32>::LANES;
        let mut out = vec![0.0f32; N];
        for k in (0..N).step_by(lanes) {
            let idx = I::I32::load(&self.idx[k..]);
            I::F32::gather(&self.table, idx).store(&mut out[k..]);
        }
        out
    }
}

proptest! {
    #[test]
    fn gather_matches_scalar_indexing(
        table in prop::collection::vec(-1e6f32..1e6f32, 1..64),
        raw_idx in prop::array::uniform8(any::<u16>()),
    ) {
        let idx = raw_idx.map(|r| (r as usize % table.len()) as i32);
        let want: Vec<f32> = idx.iter().map(|&i| table[i as usize]).collect();
        for kind in available_kinds() {
            let got = dispatch_on(kind, GatherOp { table: table.clone(), idx });
            for i in 0..N {
                prop_assert!(
                    same_f32(got[i], want[i]),
                    "{kind} lane {i}: idx={} got={} want={}",
                    idx[i], got[i], want[i]
                );
            }
        }
    }
}

/// Width-dependent ops checked against a lane-count-parameterized model.
struct WidthOps {
    a: [f32; N],
    b: [f32; N],
}

/// (lanes, sums, mins, maxs, interleaved) per vector processed.
type WidthReport = (usize, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);

impl IsaOp for WidthOps {
    type Output = WidthReport;
    fn run<I: Isa>(self) -> WidthReport {
        let lanes = <I::F32 as SimdF32>::LANES;
        let (mut sums, mut mins, mut maxs, mut inter) = (vec![], vec![], vec![], vec![]);
        for k in (0..N).step_by(lanes) {
            let a = I::F32::load(&self.a[k..]);
            let b = I::F32::load(&self.b[k..]);
            sums.push(a.reduce_sum());
            mins.push(a.reduce_min());
            maxs.push(a.reduce_max());
            let (lo, hi) = a.interleave(b);
            let mut buf = vec![0.0f32; lanes];
            lo.store(&mut buf);
            inter.extend_from_slice(&buf);
            hi.store(&mut buf);
            inter.extend_from_slice(&buf);
        }
        (lanes, sums, mins, maxs, inter)
    }
}

proptest! {
    #[test]
    fn reductions_and_interleave_match_width_model(
        a in prop::array::uniform8(-1e4f32..1e4f32),
        b in prop::array::uniform8(-1e4f32..1e4f32),
    ) {
        for kind in available_kinds() {
            let (lanes, sums, mins, maxs, inter) = dispatch_on(kind, WidthOps { a, b });
            for (v, chunk) in sums.iter().zip(a.chunks_exact(lanes)) {
                let want: f64 = chunk.iter().map(|&x| x as f64).sum();
                prop_assert!(
                    (*v as f64 - want).abs() <= 1e-2 * want.abs().max(1.0),
                    "{kind} reduce_sum: {v} vs {want}"
                );
            }
            for (v, chunk) in mins.iter().zip(a.chunks_exact(lanes)) {
                let want = chunk.iter().copied().fold(f32::INFINITY, f32::min);
                prop_assert_eq!(*v, want, "{} reduce_min", kind);
            }
            for (v, chunk) in maxs.iter().zip(a.chunks_exact(lanes)) {
                let want = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert_eq!(*v, want, "{} reduce_max", kind);
            }
            // interleave spec: processing a,b per vector yields [a0,b0,a1,b1,...]
            let mut want = Vec::new();
            for k in (0..N).step_by(lanes) {
                for i in 0..lanes {
                    want.push(a[k + i]);
                    want.push(b[k + i]);
                }
            }
            prop_assert_eq!(&inter, &want, "{} interleave", kind);
        }
    }
}
