//! The 128-bit backend: the crate's portable vector types as an [`Isa`].
//!
//! [`Sse2`] does not define new vector types — it implements the ISA
//! traits directly on [`F32x4`], [`F64x2`], [`I32x4`] and their masks,
//! which lower to SSE2 instructions on x86_64 and to scalar-fallback
//! arrays elsewhere. That makes `body::<Sse2>` compile on every
//! architecture (the fixed-width serving wrappers rely on this), while
//! [`Isa::available`] reports `true` only where the lowering is actually
//! SSE2, so runtime dispatch never *selects* it off x86_64.

use super::{Isa, SimdF32, SimdF64, SimdI32, SimdMask};
use crate::masks::{Mask32x4, Mask64x2};
use crate::{F32x4, F64x2, I32x4};

/// The 128-bit backend built on the crate's portable vector types.
#[derive(Copy, Clone, Debug, Default)]
pub struct Sse2;

impl Isa for Sse2 {
    const NAME: &'static str = "sse2";
    const WIDTH_BITS: usize = 128;
    type F32 = F32x4;
    type F64 = F64x2;
    type I32 = I32x4;
    type M32 = Mask32x4;
    type M64 = Mask64x2;

    #[inline]
    fn available() -> bool {
        cfg!(target_arch = "x86_64")
    }
}

impl SimdMask for Mask32x4 {
    const LANES: usize = 4;

    #[inline(always)]
    fn none() -> Self {
        Mask32x4::none()
    }

    #[inline(always)]
    fn all_true() -> Self {
        Mask32x4::all_true()
    }

    #[inline(always)]
    fn first_n(n: usize) -> Self {
        Mask32x4::from_bools(n >= 1, n >= 2, n >= 3, n >= 4)
    }

    #[inline(always)]
    fn test(self, i: usize) -> bool {
        self.lane(i)
    }

    #[inline(always)]
    fn any(self) -> bool {
        Mask32x4::any(self)
    }

    #[inline(always)]
    fn all(self) -> bool {
        Mask32x4::all(self)
    }

    #[inline(always)]
    fn count(self) -> u32 {
        Mask32x4::count(self)
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        self & rhs
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        self | rhs
    }

    #[inline(always)]
    fn not(self) -> Self {
        !self
    }
}

impl SimdMask for Mask64x2 {
    const LANES: usize = 2;

    #[inline(always)]
    fn none() -> Self {
        Mask64x2::none()
    }

    #[inline(always)]
    fn all_true() -> Self {
        Mask64x2::all_true()
    }

    #[inline(always)]
    fn first_n(n: usize) -> Self {
        Mask64x2::from_bools(n >= 1, n >= 2)
    }

    #[inline(always)]
    fn test(self, i: usize) -> bool {
        self.lane(i)
    }

    #[inline(always)]
    fn any(self) -> bool {
        Mask64x2::any(self)
    }

    #[inline(always)]
    fn all(self) -> bool {
        Mask64x2::all(self)
    }

    #[inline(always)]
    fn count(self) -> u32 {
        Mask64x2::count(self)
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        self & rhs
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        self | rhs
    }

    #[inline(always)]
    fn not(self) -> Self {
        !self
    }
}

impl SimdF32 for F32x4 {
    const LANES: usize = 4;
    type Mask = Mask32x4;
    type I32 = I32x4;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        F32x4::splat(v)
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        F32x4::from_slice(src)
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        self.write_to_slice(dst);
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be readable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn load_ptr_mask(ptr: *const f32, mask: Self::Mask) -> Self {
        let mut tmp = [0.0f32; 4];
        for (i, t) in tmp.iter_mut().enumerate() {
            if mask.lane(i) {
                // SAFETY: the caller guarantees `ptr + i` is readable for
                // every lane the mask enables; false lanes stay zero.
                *t = unsafe { ptr.add(i).read() };
            }
        }
        F32x4::from_array(tmp)
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be writable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn store_ptr_mask(self, ptr: *mut f32, mask: Self::Mask) {
        let tmp = self.to_array();
        for (i, t) in tmp.iter().enumerate() {
            if mask.lane(i) {
                // SAFETY: the caller guarantees `ptr + i` is writable for
                // every lane the mask enables; false lanes are untouched.
                unsafe { ptr.add(i).write(*t) };
            }
        }
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f32 {
        F32x4::lane(self, i)
    }

    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        F32x4::mul_add(self, m, a)
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        F32x4::min(self, rhs)
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        F32x4::max(self, rhs)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        F32x4::abs(self)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        F32x4::sqrt(self)
    }

    #[inline(always)]
    fn floor(self) -> Self {
        F32x4::floor(self)
    }

    #[inline(always)]
    fn simd_eq(self, rhs: Self) -> Self::Mask {
        F32x4::simd_eq(self, rhs)
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        F32x4::simd_lt(self, rhs)
    }

    #[inline(always)]
    fn simd_le(self, rhs: Self) -> Self::Mask {
        F32x4::simd_le(self, rhs)
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        F32x4::simd_gt(self, rhs)
    }

    #[inline(always)]
    fn simd_ge(self, rhs: Self) -> Self::Mask {
        F32x4::simd_ge(self, rhs)
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        mask.select(on_true, on_false)
    }

    #[inline(always)]
    fn to_i32_trunc(self) -> Self::I32 {
        F32x4::to_i32_trunc(self)
    }

    #[inline(always)]
    fn from_i32(v: Self::I32) -> Self {
        v.to_f32()
    }

    #[inline(always)]
    fn from_bits(bits: Self::I32) -> Self {
        F32x4::from_bits(bits)
    }

    #[inline(always)]
    fn to_bits(self) -> Self::I32 {
        F32x4::to_bits(self)
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        F32x4::reduce_sum(self)
    }

    #[inline(always)]
    fn reduce_min(self) -> f32 {
        F32x4::reduce_min(self)
    }

    #[inline(always)]
    fn reduce_max(self) -> f32 {
        F32x4::reduce_max(self)
    }

    #[inline(always)]
    fn gather(table: &[f32], idx: Self::I32) -> Self {
        F32x4::gather(table, idx)
    }

    #[inline(always)]
    fn interleave(self, rhs: Self) -> (Self, Self) {
        (self.interleave_lo(rhs), self.interleave_hi(rhs))
    }
}

impl SimdF64 for F64x2 {
    const LANES: usize = 2;
    type Mask = Mask64x2;

    #[inline(always)]
    fn splat(v: f64) -> Self {
        F64x2::splat(v)
    }

    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        F64x2::from_slice(src)
    }

    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        self.write_to_slice(dst);
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be readable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn load_ptr_mask(ptr: *const f64, mask: Self::Mask) -> Self {
        let mut tmp = [0.0f64; 2];
        for (i, t) in tmp.iter_mut().enumerate() {
            if mask.lane(i) {
                // SAFETY: the caller guarantees `ptr + i` is readable for
                // every lane the mask enables; false lanes stay zero.
                *t = unsafe { ptr.add(i).read() };
            }
        }
        F64x2::from_array(tmp)
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be writable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn store_ptr_mask(self, ptr: *mut f64, mask: Self::Mask) {
        let tmp = self.to_array();
        for (i, t) in tmp.iter().enumerate() {
            if mask.lane(i) {
                // SAFETY: the caller guarantees `ptr + i` is writable for
                // every lane the mask enables; false lanes are untouched.
                unsafe { ptr.add(i).write(*t) };
            }
        }
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f64 {
        F64x2::lane(self, i)
    }

    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        F64x2::mul_add(self, m, a)
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        F64x2::min(self, rhs)
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        F64x2::max(self, rhs)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        F64x2::abs(self)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        F64x2::sqrt(self)
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        F64x2::simd_lt(self, rhs)
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        F64x2::simd_gt(self, rhs)
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        mask.select(on_true, on_false)
    }

    #[inline(always)]
    fn reduce_sum(self) -> f64 {
        F64x2::reduce_sum(self)
    }
}

impl SimdI32 for I32x4 {
    const LANES: usize = 4;
    type Mask = Mask32x4;

    #[inline(always)]
    fn splat(v: i32) -> Self {
        I32x4::splat(v)
    }

    #[inline(always)]
    fn load(src: &[i32]) -> Self {
        I32x4::from_slice(src)
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32]) {
        self.write_to_slice(dst);
    }

    #[inline(always)]
    fn lane(self, i: usize) -> i32 {
        I32x4::lane(self, i)
    }

    #[inline(always)]
    fn simd_eq(self, rhs: Self) -> Self::Mask {
        I32x4::simd_eq(self, rhs)
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        I32x4::simd_gt(self, rhs)
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        I32x4::simd_lt(self, rhs)
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        mask.select_i32(on_true, on_false)
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        I32x4::min(self, rhs)
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        I32x4::max(self, rhs)
    }

    #[inline(always)]
    fn reduce_sum(self) -> i32 {
        I32x4::reduce_sum(self)
    }
}
