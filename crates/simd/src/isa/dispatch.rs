//! Runtime backend selection and the [`IsaOp`] dispatch trampoline.
//!
//! Selection order: a `NINJA_ISA` environment override wins if set (and
//! errors cleanly if the named backend cannot run here); otherwise
//! CPUID-based detection picks the best available backend —
//! AVX2+FMA > SSE2 on x86_64, NEON on aarch64, Scalar elsewhere.
//!
//! Dispatch uses a visitor ([`IsaOp`]) rather than returning a trait
//! object: the selected arm monomorphizes the op body for that backend,
//! and the AVX2 arm runs it inside a `#[target_feature(enable =
//! "avx2,fma")]` trampoline so LLVM can inline the 256-bit intrinsics.
//! Note `#[target_feature]` does not travel across thread boundaries:
//! parallel kernels must call [`dispatch`] *inside* the per-chunk
//! closure, not around the thread-pool loop. [`active`] is cached, so a
//! per-chunk call costs one atomic load.

use super::scalar::Scalar;
use super::sse2::Sse2;
use super::Isa;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
use super::avx2::Avx2;
#[cfg(target_arch = "aarch64")]
use super::neon::Neon;

/// Environment variable that forces a backend (`scalar`, `sse2`,
/// `avx2`, `neon`) instead of CPUID-based detection.
pub const NINJA_ISA_ENV: &str = "NINJA_ISA";

/// Identifier for one ISA backend.
///
/// Every variant exists on every architecture so reports, perfdb
/// records, and CLI parsing are arch-independent; [`IsaKind::available`]
/// says whether the backend can actually run here.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IsaKind {
    /// One-lane pure-Rust reference backend.
    Scalar,
    /// 128-bit portable types (SSE2 instructions on x86_64).
    Sse2,
    /// 256-bit AVX2+FMA (x86_64 with CPUID support).
    Avx2,
    /// 128-bit NEON (aarch64).
    Neon,
}

impl IsaKind {
    /// All backend kinds, in dispatch-preference order (widest first).
    pub const ALL: [IsaKind; 4] = [IsaKind::Avx2, IsaKind::Neon, IsaKind::Sse2, IsaKind::Scalar];

    /// Lower-case name as used in `NINJA_ISA`, reports, and perfdb.
    pub fn name(self) -> &'static str {
        match self {
            IsaKind::Scalar => Scalar::NAME,
            IsaKind::Sse2 => Sse2::NAME,
            IsaKind::Avx2 => "avx2",
            IsaKind::Neon => "neon",
        }
    }

    /// `f32` vector width in bits.
    pub fn width_bits(self) -> usize {
        match self {
            IsaKind::Scalar => 32,
            IsaKind::Sse2 | IsaKind::Neon => 128,
            IsaKind::Avx2 => 256,
        }
    }

    /// Parses a backend name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(IsaKind::Scalar),
            "sse2" => Some(IsaKind::Sse2),
            "avx2" => Some(IsaKind::Avx2),
            "neon" => Some(IsaKind::Neon),
            _ => None,
        }
    }

    /// Whether this backend can run on the current CPU and build.
    pub fn available(self) -> bool {
        match self {
            IsaKind::Scalar => Scalar::available(),
            IsaKind::Sse2 => Sse2::available(),
            #[cfg(target_arch = "x86_64")]
            IsaKind::Avx2 => Avx2::available(),
            #[cfg(not(target_arch = "x86_64"))]
            IsaKind::Avx2 => false,
            #[cfg(target_arch = "aarch64")]
            IsaKind::Neon => Neon::available(),
            #[cfg(not(target_arch = "aarch64"))]
            IsaKind::Neon => false,
        }
    }
}

impl std::fmt::Display for IsaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Backends that can run on this host, widest first.
pub fn available_kinds() -> Vec<IsaKind> {
    IsaKind::ALL.into_iter().filter(|k| k.available()).collect()
}

/// The best backend the current CPU supports (ignores `NINJA_ISA`).
pub fn detect_best() -> IsaKind {
    IsaKind::ALL
        .into_iter()
        .find(|k| k.available())
        .unwrap_or(IsaKind::Scalar)
}

/// Resolves an optional backend-name override against this host.
///
/// `None` picks [`detect_best`]. `Some(name)` selects that backend, or
/// returns a descriptive error if the name is unknown or the backend
/// cannot run here — callers (like `reproduce`) surface that error
/// instead of silently falling back.
pub fn resolve(override_name: Option<&str>) -> Result<IsaKind, String> {
    let Some(name) = override_name else {
        return Ok(detect_best());
    };
    let kind = IsaKind::parse(name).ok_or_else(|| {
        format!("unknown ISA backend {name:?} (expected scalar, sse2, avx2, or neon)")
    })?;
    if !kind.available() {
        let avail: Vec<&str> = available_kinds().iter().map(|k| k.name()).collect();
        return Err(format!(
            "ISA backend '{}' is not available on this CPU/build (available: {})",
            kind.name(),
            avail.join(", ")
        ));
    }
    Ok(kind)
}

/// [`resolve`] driven by the `NINJA_ISA` environment variable; an unset
/// or empty variable means auto-detection.
pub fn resolve_from_env() -> Result<IsaKind, String> {
    match std::env::var(NINJA_ISA_ENV) {
        Ok(v) if !v.trim().is_empty() => resolve(Some(v.trim())),
        _ => Ok(detect_best()),
    }
}

/// Test-only override slot: 0 = none, otherwise IsaKind discriminant + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Caches the environment/CPUID resolution for [`active`].
static ACTIVE: OnceLock<IsaKind> = OnceLock::new();

/// Forces [`active`] (and thus [`dispatch`]) to the given backend for
/// the rest of the process, or restores normal resolution with `None`.
///
/// Intended for tests that pin a backend without spawning a process per
/// `NINJA_ISA` value. The caller must pick an available backend —
/// [`dispatch`] still asserts availability.
pub fn force_for_test(kind: Option<IsaKind>) {
    let v = match kind {
        None => 0,
        Some(IsaKind::Scalar) => 1,
        Some(IsaKind::Sse2) => 2,
        Some(IsaKind::Avx2) => 3,
        Some(IsaKind::Neon) => 4,
    };
    FORCED.store(v, Ordering::SeqCst);
}

/// The backend every [`dispatch`] call runs on: the `NINJA_ISA`
/// override if set and usable, otherwise the best detected backend.
///
/// The environment is read once and cached. An *invalid* `NINJA_ISA`
/// value falls back to detection here — binaries that want a hard error
/// call [`resolve_from_env`] at startup and report it before any kernel
/// runs.
pub fn active() -> IsaKind {
    match FORCED.load(Ordering::SeqCst) {
        1 => return IsaKind::Scalar,
        2 => return IsaKind::Sse2,
        3 => return IsaKind::Avx2,
        4 => return IsaKind::Neon,
        _ => {}
    }
    *ACTIVE.get_or_init(|| resolve_from_env().unwrap_or_else(|_| detect_best()))
}

/// A width-generic computation, dispatched to one backend at runtime.
///
/// Implementors put the kernel body in [`IsaOp::run`], written against
/// the [`Isa`] associated types; [`dispatch`] monomorphizes it per
/// backend and runs the selected instantiation inside that backend's
/// `#[target_feature]` context.
pub trait IsaOp {
    /// Result of the computation.
    type Output;

    /// The width-generic body.
    fn run<I: Isa>(self) -> Self::Output;
}

/// Runs `op` on the [`active`] backend.
#[inline]
pub fn dispatch<Op: IsaOp>(op: Op) -> Op::Output {
    dispatch_on(active(), op)
}

/// Runs `op` on an explicitly chosen backend.
///
/// # Panics
///
/// Panics if `kind` is not available on this CPU/build.
#[inline]
pub fn dispatch_on<Op: IsaOp>(kind: IsaKind, op: Op) -> Op::Output {
    assert!(
        kind.available(),
        "ISA backend '{}' is not available on this CPU/build",
        kind.name()
    );
    match kind {
        IsaKind::Scalar => op.run::<Scalar>(),
        IsaKind::Sse2 => op.run::<Sse2>(),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the availability assert above verified avx2+fma via
        // CPUID, so entering the target_feature trampoline is sound.
        IsaKind::Avx2 => unsafe { run_avx2(op) },
        #[cfg(target_arch = "aarch64")]
        IsaKind::Neon => op.run::<Neon>(),
        #[allow(unreachable_patterns)]
        _ => unreachable!("backend passed the availability check but has no dispatch arm"),
    }
}

/// The AVX2 trampoline: everything `op.run::<Avx2>()` inlines into this
/// frame compiles with AVX2+FMA enabled, so the backend's intrinsics
/// become straight-line 256-bit code even at a baseline `target-cpu`.
// SAFETY: unsafe to call because of `target_feature` — the caller must
// verify avx2+fma via CPUID first (`dispatch_on` asserts availability
// before entering).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn run_avx2<Op: IsaOp>(op: Op) -> Op::Output {
    op.run::<Avx2>()
}

#[cfg(test)]
mod tests {
    use super::super::{SimdF32, SimdI32};
    use super::*;

    #[test]
    fn parse_roundtrips_names() {
        for kind in IsaKind::ALL {
            assert_eq!(IsaKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(IsaKind::parse("AVX2"), Some(IsaKind::Avx2));
        assert_eq!(IsaKind::parse("sse4"), None);
        assert_eq!(IsaKind::parse(""), None);
    }

    #[test]
    fn widths_match_backends() {
        assert_eq!(IsaKind::Scalar.width_bits(), 32);
        assert_eq!(IsaKind::Sse2.width_bits(), 128);
        assert_eq!(IsaKind::Avx2.width_bits(), 256);
        assert_eq!(IsaKind::Neon.width_bits(), 128);
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(IsaKind::Scalar.available());
        assert!(available_kinds().contains(&IsaKind::Scalar));
        assert!(detect_best().available());
    }

    #[test]
    fn resolve_picks_named_backend() {
        assert_eq!(resolve(Some("scalar")), Ok(IsaKind::Scalar));
        assert_eq!(resolve(None), Ok(detect_best()));
    }

    #[test]
    fn resolve_rejects_unknown_names() {
        let err = resolve(Some("avx512")).unwrap_err();
        assert!(err.contains("unknown ISA backend"), "got: {err}");
        assert!(err.contains("avx512"), "got: {err}");
    }

    #[test]
    fn resolve_rejects_unavailable_backends_with_a_clean_error() {
        // Neon can never run on x86_64 builds and vice versa, so one of
        // the two is guaranteed unavailable on any host.
        let foreign = if cfg!(target_arch = "aarch64") {
            "sse2"
        } else {
            "neon"
        };
        let err = resolve(Some(foreign)).unwrap_err();
        assert!(err.contains("not available"), "got: {err}");
        assert!(err.contains("available:"), "got: {err}");
        assert!(err.contains("scalar"), "got: {err}");
    }

    struct SumSquares(Vec<f32>);
    impl IsaOp for SumSquares {
        type Output = f32;
        fn run<I: Isa>(self) -> f32 {
            let lanes = <I::F32 as SimdF32>::LANES;
            let mut acc = I::F32::zero();
            let mut chunks = self.0.chunks_exact(lanes);
            for c in chunks.by_ref() {
                let v = I::F32::load(c);
                acc = v.mul_add(v, acc);
            }
            acc.reduce_sum() + chunks.remainder().iter().map(|x| x * x).sum::<f32>()
        }
    }

    #[test]
    fn dispatch_on_agrees_across_available_backends() {
        let xs: Vec<f32> = (0..103).map(|i| i as f32 * 0.25).collect();
        let want: f32 = xs.iter().map(|x| x * x).sum();
        for kind in available_kinds() {
            let got = dispatch_on(kind, SumSquares(xs.clone()));
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-5, "{kind}: got {got}, want {want}");
        }
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn dispatch_on_panics_for_foreign_backends() {
        let kind = if cfg!(target_arch = "aarch64") {
            IsaKind::Avx2 // x86-only; also unavailable on aarch64 hosts
        } else {
            IsaKind::Neon
        };
        let _ = dispatch_on(kind, SumSquares(vec![1.0]));
    }

    struct LaneCount;
    impl IsaOp for LaneCount {
        type Output = usize;
        fn run<I: Isa>(self) -> usize {
            <I::I32 as SimdI32>::LANES
        }
    }

    #[test]
    fn force_for_test_overrides_active() {
        force_for_test(Some(IsaKind::Scalar));
        assert_eq!(active(), IsaKind::Scalar);
        assert_eq!(dispatch(LaneCount), 1);
        force_for_test(None);
        assert!(active().available());
    }
}
