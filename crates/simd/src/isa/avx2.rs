//! The 256-bit backend: AVX2 + FMA via `core::arch::x86_64`.
//!
//! Eight `f32` lanes, four `f64` lanes, hardware masked loads/stores
//! (`vmaskmov`), hardware gather (`vgatherdps`, behind a bounds check)
//! and fused multiply-add. This backend is only reachable through the
//! dispatcher, which verifies `avx2` and `fma` with CPUID before calling
//! into the `#[target_feature]` trampoline — see `dispatch.rs`. The
//! types themselves never check features per operation.

use super::{Isa, SimdF32, SimdF64, SimdI32, SimdMask};
use core::arch::x86_64::*;
use core::fmt;
use core::ops::{Add, BitAnd, BitOr, Div, Mul, Neg, Shl, Shr, Sub};

/// Wraps an intrinsic call whose only effects are on register lanes.
macro_rules! avx {
    ($e:expr) => {
        // SAFETY: Avx2 code runs only inside dispatch's
        // `#[target_feature(enable = "avx2,fma")]` trampoline, entered
        // after a runtime CPUID check; the intrinsic only reads and
        // writes register lanes.
        unsafe { $e }
    };
}

/// The 256-bit AVX2+FMA backend (x86_64 only).
#[derive(Copy, Clone, Debug, Default)]
pub struct Avx2;

impl Isa for Avx2 {
    const NAME: &'static str = "avx2";
    const WIDTH_BITS: usize = 256;
    type F32 = AvxF32;
    type F64 = AvxF64;
    type I32 = AvxI32;
    type M32 = AvxM32;
    type M64 = AvxM64;

    #[inline]
    fn available() -> bool {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
}

/// Mask over eight 32-bit lanes (all-ones / all-zeros per lane).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct AvxM32(pub(crate) __m256);

impl AvxM32 {
    #[inline(always)]
    fn movemask(self) -> i32 {
        avx!(_mm256_movemask_ps(self.0))
    }
}

impl fmt::Debug for AvxM32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AvxM32({:#010b})", self.movemask())
    }
}

impl SimdMask for AvxM32 {
    const LANES: usize = 8;

    #[inline(always)]
    fn none() -> Self {
        Self(avx!(_mm256_setzero_ps()))
    }

    #[inline(always)]
    fn all_true() -> Self {
        Self(avx!(_mm256_castsi256_ps(_mm256_set1_epi32(-1))))
    }

    #[inline(always)]
    fn first_n(n: usize) -> Self {
        let l = |b: bool| if b { -1i32 } else { 0 };
        Self(avx!(_mm256_castsi256_ps(_mm256_setr_epi32(
            l(n >= 1),
            l(n >= 2),
            l(n >= 3),
            l(n >= 4),
            l(n >= 5),
            l(n >= 6),
            l(n >= 7),
            l(n >= 8),
        ))))
    }

    #[inline(always)]
    fn test(self, i: usize) -> bool {
        assert!(i < 8, "lane index out of range");
        (self.movemask() >> i) & 1 != 0
    }

    #[inline(always)]
    fn any(self) -> bool {
        self.movemask() != 0
    }

    #[inline(always)]
    fn all(self) -> bool {
        self.movemask() == 0xff
    }

    #[inline(always)]
    fn count(self) -> u32 {
        self.movemask().count_ones()
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Self(avx!(_mm256_and_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Self(avx!(_mm256_or_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn not(self) -> Self {
        Self(avx!(_mm256_xor_ps(self.0, Self::all_true().0)))
    }
}

/// Mask over four 64-bit lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct AvxM64(pub(crate) __m256d);

impl AvxM64 {
    #[inline(always)]
    fn movemask(self) -> i32 {
        avx!(_mm256_movemask_pd(self.0))
    }
}

impl fmt::Debug for AvxM64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AvxM64({:#06b})", self.movemask())
    }
}

impl SimdMask for AvxM64 {
    const LANES: usize = 4;

    #[inline(always)]
    fn none() -> Self {
        Self(avx!(_mm256_setzero_pd()))
    }

    #[inline(always)]
    fn all_true() -> Self {
        Self(avx!(_mm256_castsi256_pd(_mm256_set1_epi64x(-1))))
    }

    #[inline(always)]
    fn first_n(n: usize) -> Self {
        let l = |b: bool| if b { -1i64 } else { 0 };
        Self(avx!(_mm256_castsi256_pd(_mm256_setr_epi64x(
            l(n >= 1),
            l(n >= 2),
            l(n >= 3),
            l(n >= 4),
        ))))
    }

    #[inline(always)]
    fn test(self, i: usize) -> bool {
        assert!(i < 4, "lane index out of range");
        (self.movemask() >> i) & 1 != 0
    }

    #[inline(always)]
    fn any(self) -> bool {
        self.movemask() != 0
    }

    #[inline(always)]
    fn all(self) -> bool {
        self.movemask() == 0b1111
    }

    #[inline(always)]
    fn count(self) -> u32 {
        self.movemask().count_ones()
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Self(avx!(_mm256_and_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Self(avx!(_mm256_or_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn not(self) -> Self {
        Self(avx!(_mm256_xor_pd(self.0, Self::all_true().0)))
    }
}

/// A vector of eight `f32` lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct AvxF32(pub(crate) __m256);

impl AvxF32 {
    #[inline(always)]
    fn to_array(self) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        // SAFETY: the unaligned store writes exactly 8 elements into a
        // local array of that size; AVX is active in dispatch's trampoline.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr(), self.0) };
        out
    }
}

impl fmt::Debug for AvxF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AvxF32({:?})", self.to_array())
    }
}

impl Add for AvxF32 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(avx!(_mm256_add_ps(self.0, rhs.0)))
    }
}

impl Sub for AvxF32 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(avx!(_mm256_sub_ps(self.0, rhs.0)))
    }
}

impl Mul for AvxF32 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(avx!(_mm256_mul_ps(self.0, rhs.0)))
    }
}

impl Div for AvxF32 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        Self(avx!(_mm256_div_ps(self.0, rhs.0)))
    }
}

impl Neg for AvxF32 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self(avx!(_mm256_xor_ps(self.0, _mm256_set1_ps(-0.0))))
    }
}

impl SimdF32 for AvxF32 {
    const LANES: usize = 8;
    type Mask = AvxM32;
    type I32 = AvxI32;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        Self(avx!(_mm256_set1_ps(v)))
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        assert!(src.len() >= 8, "AvxF32::load needs at least 8 elements");
        // SAFETY: the assert above guarantees 8 readable elements; the
        // load is unaligned.
        Self(unsafe { _mm256_loadu_ps(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        assert!(dst.len() >= 8, "AvxF32::store needs at least 8 elements");
        // SAFETY: the assert above guarantees 8 writable elements; the
        // store is unaligned.
        unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), self.0) };
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be readable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn load_ptr_mask(ptr: *const f32, mask: Self::Mask) -> Self {
        // SAFETY: `vmaskmovps` architecturally suppresses the memory
        // access for false lanes, so only lanes the caller declared
        // readable are touched.
        Self(unsafe { _mm256_maskload_ps(ptr, _mm256_castps_si256(mask.0)) })
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be writable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn store_ptr_mask(self, ptr: *mut f32, mask: Self::Mask) {
        // SAFETY: `vmaskmovps` architecturally suppresses the memory
        // access for false lanes, so only lanes the caller declared
        // writable are touched.
        unsafe { _mm256_maskstore_ps(ptr, _mm256_castps_si256(mask.0), self.0) };
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f32 {
        self.to_array()[i]
    }

    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        Self(avx!(_mm256_fmadd_ps(self.0, m.0, a.0)))
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        Self(avx!(_mm256_min_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self(avx!(_mm256_max_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        Self(avx!(_mm256_and_ps(
            self.0,
            _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff)),
        )))
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        Self(avx!(_mm256_sqrt_ps(self.0)))
    }

    #[inline(always)]
    fn floor(self) -> Self {
        Self(avx!(_mm256_floor_ps(self.0)))
    }

    #[inline(always)]
    fn simd_eq(self, rhs: Self) -> Self::Mask {
        AvxM32(avx!(_mm256_cmp_ps::<_CMP_EQ_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        AvxM32(avx!(_mm256_cmp_ps::<_CMP_LT_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_le(self, rhs: Self) -> Self::Mask {
        AvxM32(avx!(_mm256_cmp_ps::<_CMP_LE_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        AvxM32(avx!(_mm256_cmp_ps::<_CMP_GT_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_ge(self, rhs: Self) -> Self::Mask {
        AvxM32(avx!(_mm256_cmp_ps::<_CMP_GE_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        Self(avx!(_mm256_blendv_ps(on_false.0, on_true.0, mask.0)))
    }

    #[inline(always)]
    fn to_i32_trunc(self) -> Self::I32 {
        AvxI32(avx!(_mm256_cvttps_epi32(self.0)))
    }

    #[inline(always)]
    fn from_i32(v: Self::I32) -> Self {
        Self(avx!(_mm256_cvtepi32_ps(v.0)))
    }

    #[inline(always)]
    fn from_bits(bits: Self::I32) -> Self {
        Self(avx!(_mm256_castsi256_ps(bits.0)))
    }

    #[inline(always)]
    fn to_bits(self) -> Self::I32 {
        AvxI32(avx!(_mm256_castps_si256(self.0)))
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        // Halves first, then within the 128-bit half — backend-defined
        // association, per the module contract.
        let a = self.to_array();
        let h = [a[0] + a[4], a[1] + a[5], a[2] + a[6], a[3] + a[7]];
        (h[0] + h[1]) + (h[2] + h[3])
    }

    #[inline(always)]
    fn reduce_min(self) -> f32 {
        let a = self.to_array();
        let m = |x: f32, y: f32| if x < y { x } else { y };
        a.into_iter().reduce(m).unwrap()
    }

    #[inline(always)]
    fn reduce_max(self) -> f32 {
        let a = self.to_array();
        let m = |x: f32, y: f32| if x > y { x } else { y };
        a.into_iter().reduce(m).unwrap()
    }

    #[inline(always)]
    fn gather(table: &[f32], idx: Self::I32) -> Self {
        let i = idx.to_array();
        for &lane in &i {
            assert!(
                (lane as usize) < table.len() && lane >= 0,
                "gather index out of bounds"
            );
        }
        // SAFETY: every lane index was just bounds-checked against
        // `table`, so the hardware gather reads only in-bounds elements.
        Self(unsafe { _mm256_i32gather_ps::<4>(table.as_ptr(), idx.0) })
    }

    #[inline(always)]
    fn interleave(self, rhs: Self) -> (Self, Self) {
        // unpack gives [a0 b0 a1 b1 | a4 b4 a5 b5] / [a2 b2 a3 b3 | a6 b6 a7 b7];
        // the 128-bit permutes re-sequence those into [a0..b3] and [a4..b7].
        let even = avx!(_mm256_unpacklo_ps(self.0, rhs.0));
        let odd = avx!(_mm256_unpackhi_ps(self.0, rhs.0));
        let lo = avx!(_mm256_permute2f128_ps::<0x20>(even, odd));
        let hi = avx!(_mm256_permute2f128_ps::<0x31>(even, odd));
        (Self(lo), Self(hi))
    }
}

/// A vector of four `f64` lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct AvxF64(pub(crate) __m256d);

impl AvxF64 {
    #[inline(always)]
    fn to_array(self) -> [f64; 4] {
        let mut out = [0.0f64; 4];
        // SAFETY: the unaligned store writes exactly 4 elements into a
        // local array of that size; AVX is active in dispatch's trampoline.
        unsafe { _mm256_storeu_pd(out.as_mut_ptr(), self.0) };
        out
    }
}

impl fmt::Debug for AvxF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AvxF64({:?})", self.to_array())
    }
}

impl Add for AvxF64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(avx!(_mm256_add_pd(self.0, rhs.0)))
    }
}

impl Sub for AvxF64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(avx!(_mm256_sub_pd(self.0, rhs.0)))
    }
}

impl Mul for AvxF64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(avx!(_mm256_mul_pd(self.0, rhs.0)))
    }
}

impl Div for AvxF64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        Self(avx!(_mm256_div_pd(self.0, rhs.0)))
    }
}

impl Neg for AvxF64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self(avx!(_mm256_xor_pd(self.0, _mm256_set1_pd(-0.0))))
    }
}

impl SimdF64 for AvxF64 {
    const LANES: usize = 4;
    type Mask = AvxM64;

    #[inline(always)]
    fn splat(v: f64) -> Self {
        Self(avx!(_mm256_set1_pd(v)))
    }

    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        assert!(src.len() >= 4, "AvxF64::load needs at least 4 elements");
        // SAFETY: the assert above guarantees 4 readable elements; the
        // load is unaligned.
        Self(unsafe { _mm256_loadu_pd(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        assert!(dst.len() >= 4, "AvxF64::store needs at least 4 elements");
        // SAFETY: the assert above guarantees 4 writable elements; the
        // store is unaligned.
        unsafe { _mm256_storeu_pd(dst.as_mut_ptr(), self.0) };
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be readable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn load_ptr_mask(ptr: *const f64, mask: Self::Mask) -> Self {
        // SAFETY: `vmaskmovpd` architecturally suppresses the memory
        // access for false lanes, so only lanes the caller declared
        // readable are touched.
        Self(unsafe { _mm256_maskload_pd(ptr, _mm256_castpd_si256(mask.0)) })
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be writable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn store_ptr_mask(self, ptr: *mut f64, mask: Self::Mask) {
        // SAFETY: `vmaskmovpd` architecturally suppresses the memory
        // access for false lanes, so only lanes the caller declared
        // writable are touched.
        unsafe { _mm256_maskstore_pd(ptr, _mm256_castpd_si256(mask.0), self.0) };
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f64 {
        self.to_array()[i]
    }

    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        Self(avx!(_mm256_fmadd_pd(self.0, m.0, a.0)))
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        Self(avx!(_mm256_min_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self(avx!(_mm256_max_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        Self(avx!(_mm256_and_pd(
            self.0,
            _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff)),
        )))
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        Self(avx!(_mm256_sqrt_pd(self.0)))
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        AvxM64(avx!(_mm256_cmp_pd::<_CMP_LT_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        AvxM64(avx!(_mm256_cmp_pd::<_CMP_GT_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        Self(avx!(_mm256_blendv_pd(on_false.0, on_true.0, mask.0)))
    }

    #[inline(always)]
    fn reduce_sum(self) -> f64 {
        let a = self.to_array();
        (a[0] + a[2]) + (a[1] + a[3])
    }
}

/// A vector of eight `i32` lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct AvxI32(pub(crate) __m256i);

impl AvxI32 {
    #[inline(always)]
    fn to_array(self) -> [i32; 8] {
        let mut out = [0i32; 8];
        // SAFETY: the unaligned store writes exactly 8 elements into a
        // local array of that size; AVX is active in dispatch's trampoline.
        unsafe { _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, self.0) };
        out
    }
}

impl fmt::Debug for AvxI32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AvxI32({:?})", self.to_array())
    }
}

impl Add for AvxI32 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(avx!(_mm256_add_epi32(self.0, rhs.0)))
    }
}

impl Sub for AvxI32 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(avx!(_mm256_sub_epi32(self.0, rhs.0)))
    }
}

impl Mul for AvxI32 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(avx!(_mm256_mullo_epi32(self.0, rhs.0)))
    }
}

impl BitAnd for AvxI32 {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        Self(avx!(_mm256_and_si256(self.0, rhs.0)))
    }
}

impl BitOr for AvxI32 {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        Self(avx!(_mm256_or_si256(self.0, rhs.0)))
    }
}

impl Shl<i32> for AvxI32 {
    type Output = Self;
    #[inline(always)]
    fn shl(self, shift: i32) -> Self {
        Self(avx!(_mm256_sll_epi32(self.0, _mm_cvtsi32_si128(shift))))
    }
}

impl Shr<i32> for AvxI32 {
    type Output = Self;
    /// Arithmetic (sign-extending) right shift.
    #[inline(always)]
    fn shr(self, shift: i32) -> Self {
        Self(avx!(_mm256_sra_epi32(self.0, _mm_cvtsi32_si128(shift))))
    }
}

impl SimdI32 for AvxI32 {
    const LANES: usize = 8;
    type Mask = AvxM32;

    #[inline(always)]
    fn splat(v: i32) -> Self {
        Self(avx!(_mm256_set1_epi32(v)))
    }

    #[inline(always)]
    fn load(src: &[i32]) -> Self {
        assert!(src.len() >= 8, "AvxI32::load needs at least 8 elements");
        // SAFETY: the assert above guarantees 8 readable elements; the
        // load is unaligned.
        Self(unsafe { _mm256_loadu_si256(src.as_ptr() as *const __m256i) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32]) {
        assert!(dst.len() >= 8, "AvxI32::store needs at least 8 elements");
        // SAFETY: the assert above guarantees 8 writable elements; the
        // store is unaligned.
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, self.0) };
    }

    #[inline(always)]
    fn lane(self, i: usize) -> i32 {
        self.to_array()[i]
    }

    #[inline(always)]
    fn simd_eq(self, rhs: Self) -> Self::Mask {
        AvxM32(avx!(_mm256_castsi256_ps(_mm256_cmpeq_epi32(self.0, rhs.0))))
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        AvxM32(avx!(_mm256_castsi256_ps(_mm256_cmpgt_epi32(self.0, rhs.0))))
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        rhs.simd_gt(self)
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        Self(avx!(_mm256_castps_si256(_mm256_blendv_ps(
            _mm256_castsi256_ps(on_false.0),
            _mm256_castsi256_ps(on_true.0),
            mask.0,
        ))))
    }

    #[inline(always)]
    fn reduce_sum(self) -> i32 {
        self.to_array().into_iter().fold(0i32, i32::wrapping_add)
    }
}
