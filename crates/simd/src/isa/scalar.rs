//! The one-lane reference backend.
//!
//! Pure safe Rust, one element per "vector": this is the semantics
//! oracle the differential conformance suite compares every other
//! backend against, and the guaranteed-available fallback the runtime
//! dispatcher bottoms out on. `min`/`max` deliberately reproduce the SSE
//! convention (`a < b ? a : b`) and `mul_add` deliberately rounds twice
//! so Scalar and [`super::Sse2`] are bit-identical.

use super::{Isa, SimdF32, SimdF64, SimdI32, SimdMask};
use core::ops::{Add, BitAnd, BitOr, Div, Mul, Neg, Shl, Shr, Sub};

/// The always-available one-lane reference backend.
#[derive(Copy, Clone, Debug, Default)]
pub struct Scalar;

impl Isa for Scalar {
    const NAME: &'static str = "scalar";
    const WIDTH_BITS: usize = 32;
    type F32 = ScalarF32;
    type F64 = ScalarF64;
    type I32 = ScalarI32;
    type M32 = ScalarMask;
    type M64 = ScalarMask;

    #[inline]
    fn available() -> bool {
        true
    }
}

/// One-lane mask: a plain boolean.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScalarMask(pub bool);

impl SimdMask for ScalarMask {
    const LANES: usize = 1;

    #[inline(always)]
    fn none() -> Self {
        Self(false)
    }

    #[inline(always)]
    fn all_true() -> Self {
        Self(true)
    }

    #[inline(always)]
    fn first_n(n: usize) -> Self {
        Self(n >= 1)
    }

    #[inline(always)]
    fn test(self, i: usize) -> bool {
        assert!(i < 1, "lane index out of range");
        self.0
    }

    #[inline(always)]
    fn any(self) -> bool {
        self.0
    }

    #[inline(always)]
    fn all(self) -> bool {
        self.0
    }

    #[inline(always)]
    fn count(self) -> u32 {
        self.0 as u32
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Self(self.0 & rhs.0)
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Self(self.0 | rhs.0)
    }

    #[inline(always)]
    fn not(self) -> Self {
        Self(!self.0)
    }
}

/// One-lane `f32` "vector".
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ScalarF32(pub f32);

macro_rules! scalar_binop {
    ($vec:ident, $trait:ident, $fn:ident, $op:tt) => {
        impl $trait for $vec {
            type Output = Self;
            #[inline(always)]
            fn $fn(self, rhs: Self) -> Self {
                Self(self.0 $op rhs.0)
            }
        }
    };
}

scalar_binop!(ScalarF32, Add, add, +);
scalar_binop!(ScalarF32, Sub, sub, -);
scalar_binop!(ScalarF32, Mul, mul, *);
scalar_binop!(ScalarF32, Div, div, /);

impl Neg for ScalarF32 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl SimdF32 for ScalarF32 {
    const LANES: usize = 1;
    type Mask = ScalarMask;
    type I32 = ScalarI32;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        Self(v)
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        Self(src[0])
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        dst[0] = self.0;
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be readable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn load_ptr_mask(ptr: *const f32, mask: Self::Mask) -> Self {
        if mask.0 {
            // SAFETY: the caller guarantees `ptr` is readable for true lanes.
            Self(unsafe { ptr.read() })
        } else {
            Self(0.0)
        }
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be writable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn store_ptr_mask(self, ptr: *mut f32, mask: Self::Mask) {
        if mask.0 {
            // SAFETY: the caller guarantees `ptr` is writable for true lanes.
            unsafe { ptr.write(self.0) }
        }
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f32 {
        assert!(i < 1, "lane index out of range");
        self.0
    }

    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        // Two roundings on purpose: bit-identical to the SSE2 backend,
        // which has no FMA. See the module-level numeric contract.
        Self(self.0 * m.0 + a.0)
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        Self(if self.0 < rhs.0 { self.0 } else { rhs.0 })
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self(if self.0 > rhs.0 { self.0 } else { rhs.0 })
    }

    #[inline(always)]
    fn abs(self) -> Self {
        Self(f32::from_bits(self.0.to_bits() & 0x7fff_ffff))
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        Self(self.0.sqrt())
    }

    #[inline(always)]
    fn floor(self) -> Self {
        Self(self.0.floor())
    }

    #[inline(always)]
    fn simd_eq(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 == rhs.0)
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 < rhs.0)
    }

    #[inline(always)]
    fn simd_le(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 <= rhs.0)
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 > rhs.0)
    }

    #[inline(always)]
    fn simd_ge(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 >= rhs.0)
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        if mask.0 {
            on_true
        } else {
            on_false
        }
    }

    #[inline(always)]
    fn to_i32_trunc(self) -> Self::I32 {
        ScalarI32(self.0 as i32)
    }

    #[inline(always)]
    fn from_i32(v: Self::I32) -> Self {
        Self(v.0 as f32)
    }

    #[inline(always)]
    fn from_bits(bits: Self::I32) -> Self {
        Self(f32::from_bits(bits.0 as u32))
    }

    #[inline(always)]
    fn to_bits(self) -> Self::I32 {
        ScalarI32(self.0.to_bits() as i32)
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        self.0
    }

    #[inline(always)]
    fn reduce_min(self) -> f32 {
        self.0
    }

    #[inline(always)]
    fn reduce_max(self) -> f32 {
        self.0
    }

    #[inline(always)]
    fn gather(table: &[f32], idx: Self::I32) -> Self {
        Self(table[usize::try_from(idx.0).expect("negative gather index")])
    }

    #[inline(always)]
    fn interleave(self, rhs: Self) -> (Self, Self) {
        (self, rhs)
    }
}

/// One-lane `f64` "vector".
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ScalarF64(pub f64);

scalar_binop!(ScalarF64, Add, add, +);
scalar_binop!(ScalarF64, Sub, sub, -);
scalar_binop!(ScalarF64, Mul, mul, *);
scalar_binop!(ScalarF64, Div, div, /);

impl Neg for ScalarF64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl SimdF64 for ScalarF64 {
    const LANES: usize = 1;
    type Mask = ScalarMask;

    #[inline(always)]
    fn splat(v: f64) -> Self {
        Self(v)
    }

    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        Self(src[0])
    }

    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        dst[0] = self.0;
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be readable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn load_ptr_mask(ptr: *const f64, mask: Self::Mask) -> Self {
        if mask.0 {
            // SAFETY: the caller guarantees `ptr` is readable for true lanes.
            Self(unsafe { ptr.read() })
        } else {
            Self(0.0)
        }
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be writable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn store_ptr_mask(self, ptr: *mut f64, mask: Self::Mask) {
        if mask.0 {
            // SAFETY: the caller guarantees `ptr` is writable for true lanes.
            unsafe { ptr.write(self.0) }
        }
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f64 {
        assert!(i < 1, "lane index out of range");
        self.0
    }

    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        Self(self.0 * m.0 + a.0)
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        Self(if self.0 < rhs.0 { self.0 } else { rhs.0 })
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self(if self.0 > rhs.0 { self.0 } else { rhs.0 })
    }

    #[inline(always)]
    fn abs(self) -> Self {
        Self(f64::from_bits(self.0.to_bits() & 0x7fff_ffff_ffff_ffff))
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        Self(self.0.sqrt())
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 < rhs.0)
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 > rhs.0)
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        if mask.0 {
            on_true
        } else {
            on_false
        }
    }

    #[inline(always)]
    fn reduce_sum(self) -> f64 {
        self.0
    }
}

/// One-lane `i32` "vector".
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScalarI32(pub i32);

impl Add for ScalarI32 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }
}

impl Sub for ScalarI32 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.wrapping_sub(rhs.0))
    }
}

impl Mul for ScalarI32 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(self.0.wrapping_mul(rhs.0))
    }
}

scalar_binop!(ScalarI32, BitAnd, bitand, &);
scalar_binop!(ScalarI32, BitOr, bitor, |);

impl Shl<i32> for ScalarI32 {
    type Output = Self;
    #[inline(always)]
    fn shl(self, rhs: i32) -> Self {
        Self(self.0 << rhs)
    }
}

impl Shr<i32> for ScalarI32 {
    type Output = Self;
    #[inline(always)]
    fn shr(self, rhs: i32) -> Self {
        Self(self.0 >> rhs)
    }
}

impl SimdI32 for ScalarI32 {
    const LANES: usize = 1;
    type Mask = ScalarMask;

    #[inline(always)]
    fn splat(v: i32) -> Self {
        Self(v)
    }

    #[inline(always)]
    fn load(src: &[i32]) -> Self {
        Self(src[0])
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32]) {
        dst[0] = self.0;
    }

    #[inline(always)]
    fn lane(self, i: usize) -> i32 {
        assert!(i < 1, "lane index out of range");
        self.0
    }

    #[inline(always)]
    fn simd_eq(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 == rhs.0)
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 > rhs.0)
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        ScalarMask(self.0 < rhs.0)
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        if mask.0 {
            on_true
        } else {
            on_false
        }
    }

    #[inline(always)]
    fn reduce_sum(self) -> i32 {
        self.0
    }
}
