//! Width-generic ISA abstraction with runtime dispatch.
//!
//! The concrete vector types of this crate ([`crate::F32x4`] and friends)
//! pin every kernel to one vector width — exactly the situation the Ninja
//! paper warns about, where code tuned for one processor generation cannot
//! ride the next one's wider registers. This module abstracts the *ISA*
//! behind a trait so a kernel written once against [`Isa`] measures at
//! 128-bit (SSE2/NEON) and 256-bit (AVX2) widths from the same source.
//!
//! # Architecture
//!
//! * [`Isa`] bundles the associated vector types of one backend:
//!   [`Isa::F32`], [`Isa::F64`], [`Isa::I32`] plus their mask types.
//! * [`SimdF32`]/[`SimdF64`]/[`SimdI32`]/[`SimdMask`] are the per-type
//!   operation contracts: lane-wise arithmetic, comparisons, blends,
//!   masked loads/stores with [`SimdMask::first_n`] tail handling,
//!   fused multiply-add, and (for `f32`) a bounds-checked gather.
//! * Four backends implement [`Isa`]: [`Scalar`] (one lane, pure safe
//!   Rust — the conformance reference), [`Sse2`] (the crate's portable
//!   128-bit types; SSE2 instructions on x86_64), [`Avx2`] (256-bit
//!   `core::arch::x86_64` intrinsics, requires AVX2+FMA), and [`Neon`]
//!   (128-bit `core::arch::aarch64` intrinsics).
//! * [`dispatch`] selects a backend at runtime: CPUID-based detection
//!   (best available wins) with a `NINJA_ISA` environment override for
//!   forced-backend testing, and an [`IsaOp`] visitor so the selected
//!   backend's monomorphized kernel body runs inside a
//!   `#[target_feature]` context (letting LLVM inline the intrinsics).
//!
//! # Numeric contract (the differential-test policy)
//!
//! * `i32` operations are bit-exact across backends.
//! * `f32`/`f64` lane operations other than `mul_add` are IEEE-754
//!   correctly rounded, hence bit-exact across backends — including NaN
//!   and infinity propagation. `min`/`max` use the SSE convention
//!   (`a < b ? a : b`, so the *second* operand wins when a lane is NaN);
//!   every backend reproduces it.
//! * `mul_add` may round once (fused, AVX2/NEON) or twice (unfused,
//!   Scalar/SSE2). Differential tests accept a result within 2 ULP of
//!   *either* reference.
//! * Reductions may reassociate; they are compared against an `f64`
//!   reference with a small relative tolerance instead of bit-exactly.
//!
//! # Example
//!
//! ```
//! use ninja_simd::isa::{dispatch, Isa, IsaOp, SimdF32};
//!
//! struct Sum<'a>(&'a [f32]);
//! impl IsaOp for Sum<'_> {
//!     type Output = f32;
//!     fn run<I: Isa>(self) -> f32 {
//!         let lanes = <I::F32 as SimdF32>::LANES;
//!         let mut acc = I::F32::zero();
//!         let mut chunks = self.0.chunks_exact(lanes);
//!         for c in chunks.by_ref() {
//!             acc = acc + I::F32::load(c);
//!         }
//!         acc.reduce_sum() + chunks.remainder().iter().sum::<f32>()
//!     }
//! }
//! let xs: Vec<f32> = (0..37).map(|i| i as f32).collect();
//! assert_eq!(dispatch(Sum(&xs)), 666.0);
//! ```

use core::fmt::Debug;
use core::ops::{Add, BitAnd, BitOr, Div, Mul, Neg, Shl, Shr, Sub};

#[cfg(target_arch = "x86_64")]
mod avx2;
mod dispatch;
pub mod math;
#[cfg(target_arch = "aarch64")]
mod neon;
mod scalar;
mod sse2;

#[cfg(target_arch = "x86_64")]
pub use avx2::{Avx2, AvxF32, AvxF64, AvxI32, AvxM32, AvxM64};
pub use dispatch::{
    active, available_kinds, detect_best, dispatch, dispatch_on, force_for_test, resolve,
    resolve_from_env, IsaKind, IsaOp, NINJA_ISA_ENV,
};
#[cfg(target_arch = "aarch64")]
pub use neon::{Neon, NeonF32, NeonF64, NeonI32, NeonM32, NeonM64};
pub use scalar::{Scalar, ScalarF32, ScalarF64, ScalarI32, ScalarMask};
pub use sse2::Sse2;

/// The widest `f32` lane count any compiled-in backend exposes; kernels
/// pad SoA buffers to a multiple of this so full-width loads at the end
/// of a rounded-up loop stay in bounds on every backend.
pub const MAX_ISA_F32_LANES: usize = 8;

/// A lane mask: the result of vector comparisons and the argument of
/// blends and masked memory operations.
///
/// Each lane is conceptually a boolean; backends store it as all-ones /
/// all-zeros lanes or as a plain `bool` (Scalar).
pub trait SimdMask: Copy + Send + Sync + 'static {
    /// Number of lanes.
    const LANES: usize;

    /// Mask with every lane false.
    fn none() -> Self;

    /// Mask with every lane true.
    fn all_true() -> Self;

    /// Mask with the first `n` lanes true (all lanes when `n >= LANES`)
    /// — the tail-handling primitive for masked loads and stores.
    fn first_n(n: usize) -> Self;

    /// Truth value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LANES`.
    fn test(self, i: usize) -> bool;

    /// True if any lane is true.
    fn any(self) -> bool;

    /// True if every lane is true.
    fn all(self) -> bool;

    /// Number of true lanes.
    fn count(self) -> u32;

    /// Lane-wise conjunction.
    fn and(self, rhs: Self) -> Self;

    /// Lane-wise disjunction.
    fn or(self, rhs: Self) -> Self;

    /// Lane-wise negation.
    fn not(self) -> Self;
}

/// A vector of `f32` lanes.
///
/// Arithmetic is lane-wise IEEE-754 `f32`; see the module docs for the
/// exact cross-backend numeric contract.
pub trait SimdF32:
    Copy
    + Send
    + Sync
    + Debug
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Number of lanes.
    const LANES: usize;
    /// Mask type produced by comparisons (shared with [`Self::I32`]).
    type Mask: SimdMask;
    /// Same-width integer vector for bit manipulation and indices.
    type I32: SimdI32<Mask = Self::Mask>;

    /// Broadcasts one value to every lane.
    fn splat(v: f32) -> Self;

    /// All-zero vector.
    #[inline(always)]
    fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Loads the first `LANES` elements of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < LANES`.
    fn load(src: &[f32]) -> Self;

    /// Stores all lanes into the first `LANES` elements of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < LANES`.
    fn store(self, dst: &mut [f32]);

    /// Loads lanes where `mask` is true, zeroing the rest. Memory at
    /// false lanes is never accessed.
    ///
    /// # Safety
    ///
    /// `ptr + i` must be valid for reads for every lane `i` where
    /// `mask.test(i)` is true.
    unsafe fn load_ptr_mask(ptr: *const f32, mask: Self::Mask) -> Self;

    /// Stores lanes where `mask` is true. Memory at false lanes is never
    /// accessed.
    ///
    /// # Safety
    ///
    /// `ptr + i` must be valid for writes for every lane `i` where
    /// `mask.test(i)` is true.
    unsafe fn store_ptr_mask(self, ptr: *mut f32, mask: Self::Mask);

    /// Mask with the first `n` lanes true — forwarding to
    /// [`SimdMask::first_n`] so kernel code can name it off the vector
    /// type it already has in scope.
    #[inline(always)]
    fn first_n_mask(n: usize) -> Self::Mask {
        Self::Mask::first_n(n)
    }

    /// Loads `min(src.len(), LANES)` elements, zeroing the remaining
    /// lanes; never reads past `src`.
    #[inline(always)]
    fn load_partial(src: &[f32]) -> Self {
        let n = src.len().min(Self::LANES);
        // SAFETY: the mask limits reads to the first `n` in-bounds elements.
        unsafe { Self::load_ptr_mask(src.as_ptr(), Self::first_n_mask(n)) }
    }

    /// Stores the first `min(dst.len(), LANES)` lanes; never writes past
    /// `dst`.
    #[inline(always)]
    fn store_partial(self, dst: &mut [f32]) {
        let n = dst.len().min(Self::LANES);
        // SAFETY: the mask limits writes to the first `n` in-bounds elements.
        unsafe { self.store_ptr_mask(dst.as_mut_ptr(), Self::first_n_mask(n)) }
    }

    /// Value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LANES`.
    fn lane(self, i: usize) -> f32;

    /// `self * m + a` — fused on backends with FMA hardware (AVX2,
    /// NEON), two roundings elsewhere. See the module numeric contract.
    fn mul_add(self, m: Self, a: Self) -> Self;

    /// Lane-wise minimum with SSE semantics: `a < b ? a : b`, so the
    /// second operand wins when a lane compares unordered (NaN).
    fn min(self, rhs: Self) -> Self;

    /// Lane-wise maximum with SSE semantics: `a > b ? a : b`.
    fn max(self, rhs: Self) -> Self;

    /// Lane-wise absolute value (clears the sign bit).
    fn abs(self) -> Self;

    /// Lane-wise square root (correctly rounded).
    fn sqrt(self) -> Self;

    /// Lane-wise floor. Backends agree for inputs whose truncation fits
    /// `i32` (the SSE2 lowering converts through `i32`); kernels in this
    /// workspace only call it on reduced-range values.
    fn floor(self) -> Self;

    /// Lane-wise `==` comparison.
    fn simd_eq(self, rhs: Self) -> Self::Mask;

    /// Lane-wise `<` comparison.
    fn simd_lt(self, rhs: Self) -> Self::Mask;

    /// Lane-wise `<=` comparison.
    fn simd_le(self, rhs: Self) -> Self::Mask;

    /// Lane-wise `>` comparison.
    fn simd_gt(self, rhs: Self) -> Self::Mask;

    /// Lane-wise `>=` comparison.
    fn simd_ge(self, rhs: Self) -> Self::Mask;

    /// Lane-wise `if mask { on_true } else { on_false }`.
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self;

    /// Truncating conversion to `i32` lanes.
    fn to_i32_trunc(self) -> Self::I32;

    /// Rounding conversion from `i32` lanes.
    fn from_i32(v: Self::I32) -> Self;

    /// Reinterprets integer lanes as `f32` bit patterns.
    fn from_bits(bits: Self::I32) -> Self;

    /// Reinterprets `f32` lanes as their integer bit patterns.
    fn to_bits(self) -> Self::I32;

    /// Sum of all lanes. Association order is backend-defined.
    fn reduce_sum(self) -> f32;

    /// Minimum over all lanes (SSE `min` semantics lane-combining).
    fn reduce_min(self) -> f32;

    /// Maximum over all lanes (SSE `max` semantics lane-combining).
    fn reduce_max(self) -> f32;

    /// Gathers `table[idx[i]]` per lane, with bounds checking (AVX2 uses
    /// the hardware gather after the check).
    ///
    /// # Panics
    ///
    /// Panics if any lane index is negative or `>= table.len()`.
    fn gather(table: &[f32], idx: Self::I32) -> Self;

    /// Interleaves lanes of `self` and `rhs` pairwise: conceptually the
    /// sequence `[a0, b0, a1, b1, ...]`, returned as (first `LANES`
    /// values, second `LANES` values). The ninja kernels use it to write
    /// `(call, put)`-style paired outputs with full-width stores.
    fn interleave(self, rhs: Self) -> (Self, Self);
}

/// A vector of `f64` lanes (half the `f32` lane count on every backend).
pub trait SimdF64:
    Copy
    + Send
    + Sync
    + Debug
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Number of lanes.
    const LANES: usize;
    /// Mask type produced by comparisons.
    type Mask: SimdMask;

    /// Broadcasts one value to every lane.
    fn splat(v: f64) -> Self;

    /// All-zero vector.
    #[inline(always)]
    fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Loads the first `LANES` elements of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < LANES`.
    fn load(src: &[f64]) -> Self;

    /// Stores all lanes into the first `LANES` elements of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < LANES`.
    fn store(self, dst: &mut [f64]);

    /// Loads lanes where `mask` is true, zeroing the rest.
    ///
    /// # Safety
    ///
    /// `ptr + i` must be valid for reads for every true lane `i`.
    unsafe fn load_ptr_mask(ptr: *const f64, mask: Self::Mask) -> Self;

    /// Stores lanes where `mask` is true.
    ///
    /// # Safety
    ///
    /// `ptr + i` must be valid for writes for every true lane `i`.
    unsafe fn store_ptr_mask(self, ptr: *mut f64, mask: Self::Mask);

    /// Mask with the first `n` lanes true.
    #[inline(always)]
    fn first_n_mask(n: usize) -> Self::Mask {
        Self::Mask::first_n(n)
    }

    /// Value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LANES`.
    fn lane(self, i: usize) -> f64;

    /// `self * m + a` — fused where the hardware has FMA.
    fn mul_add(self, m: Self, a: Self) -> Self;

    /// Lane-wise minimum, SSE semantics (`a < b ? a : b`).
    fn min(self, rhs: Self) -> Self;

    /// Lane-wise maximum, SSE semantics (`a > b ? a : b`).
    fn max(self, rhs: Self) -> Self;

    /// Lane-wise absolute value.
    fn abs(self) -> Self;

    /// Lane-wise square root.
    fn sqrt(self) -> Self;

    /// Lane-wise `<` comparison.
    fn simd_lt(self, rhs: Self) -> Self::Mask;

    /// Lane-wise `>` comparison.
    fn simd_gt(self, rhs: Self) -> Self::Mask;

    /// Lane-wise `if mask { on_true } else { on_false }`.
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self;

    /// Sum of all lanes. Association order is backend-defined.
    fn reduce_sum(self) -> f64;
}

/// A vector of `i32` lanes.
pub trait SimdI32:
    Copy
    + Send
    + Sync
    + Debug
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + Shl<i32, Output = Self>
    + Shr<i32, Output = Self>
{
    /// Number of lanes.
    const LANES: usize;
    /// Mask type produced by comparisons (shared with the `f32` vector).
    type Mask: SimdMask;

    /// Broadcasts one value to every lane.
    fn splat(v: i32) -> Self;

    /// All-zero vector.
    #[inline(always)]
    fn zero() -> Self {
        Self::splat(0)
    }

    /// Loads the first `LANES` elements of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < LANES`.
    fn load(src: &[i32]) -> Self;

    /// Stores all lanes into the first `LANES` elements of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < LANES`.
    fn store(self, dst: &mut [i32]);

    /// Value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LANES`.
    fn lane(self, i: usize) -> i32;

    /// Lane-wise `==` comparison.
    fn simd_eq(self, rhs: Self) -> Self::Mask;

    /// Lane-wise signed `>` comparison.
    fn simd_gt(self, rhs: Self) -> Self::Mask;

    /// Lane-wise signed `<` comparison.
    fn simd_lt(self, rhs: Self) -> Self::Mask;

    /// Lane-wise `if mask { on_true } else { on_false }`.
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self;

    /// Lane-wise signed minimum.
    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        Self::select(self.simd_lt(rhs), self, rhs)
    }

    /// Lane-wise signed maximum.
    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self::select(self.simd_gt(rhs), self, rhs)
    }

    /// Wrapping sum of all lanes.
    fn reduce_sum(self) -> i32;
}

/// One instruction-set backend: a bundle of same-width vector types plus
/// an availability probe.
///
/// The `F32`/`I32` pair shares one mask type (`M32`, 32-bit lanes) and
/// `F64` has its own (`M64`, 64-bit lanes); the equality constraints
/// below let width-generic kernels move masks between float and integer
/// domains without conversion.
pub trait Isa: Copy + Default + Send + Sync + 'static {
    /// Backend name as recorded in reports and perfdb (`scalar`,
    /// `sse2`, `avx2`, `neon`).
    const NAME: &'static str;
    /// `f32` vector width in bits (32 for Scalar).
    const WIDTH_BITS: usize;
    /// The `f32` vector type.
    type F32: SimdF32<I32 = Self::I32, Mask = Self::M32>;
    /// The `f64` vector type.
    type F64: SimdF64<Mask = Self::M64>;
    /// The `i32` vector type.
    type I32: SimdI32<Mask = Self::M32>;
    /// Mask over 32-bit lanes.
    type M32: SimdMask;
    /// Mask over 64-bit lanes.
    type M64: SimdMask;

    /// Whether this backend can run on the current CPU and build.
    fn available() -> bool;
}
