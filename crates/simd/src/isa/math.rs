//! Width-generic transcendental math over any [`Isa`] backend.
//!
//! The same Cephes-style polynomial kernels as [`crate::math`], written
//! once against the [`SimdF32`] contract so BlackScholes and Libor run
//! them at 1, 4, or 8 lanes from one source. Constants are identical to
//! the concrete versions; results differ across backends only through
//! `mul_add` fusion (see the [`super`] numeric contract).
//!
//! Accuracy matches [`crate::math`]: relative error below ~2e-6 for
//! [`exp`] over `[-87, 88]` and [`ln`] on normal positive inputs,
//! absolute error below ~1e-6 for [`norm_cdf`] (A&S 26.2.17).

use super::{Isa, SimdF32, SimdI32};

const EXP_HI: f32 = 88.376_26;
const EXP_LO: f32 = -87.336_54;
const LOG2E: f32 = std::f32::consts::LOG2_E;
// ln(2) split into a high part exactly representable in f32 and a low
// correction, so that `x - n*ln2` stays accurate (Cody-Waite reduction).
const LN2_HI: f32 = 0.693_359_4;
const LN2_LO: f32 = -2.121_944_4e-4;

/// Lane-wise `e^x`: clamp to `[-87.3, 88.4]`, reduce as `x = n·ln2 + r`,
/// reconstruct a degree-5 polynomial in `r` scaled by `2^n`.
#[inline(always)]
pub fn exp<I: Isa>(x: I::F32) -> I::F32 {
    let x = x.min(I::F32::splat(EXP_HI)).max(I::F32::splat(EXP_LO));

    // n = round(x / ln2), computed as floor(x*log2e + 0.5).
    let fx = x.mul_add(I::F32::splat(LOG2E), I::F32::splat(0.5)).floor();

    // r = x - n*ln2, in two steps for accuracy.
    let r = x - fx * I::F32::splat(LN2_HI) - fx * I::F32::splat(LN2_LO);

    // Degree-5 minimax polynomial for e^r on [-ln2/2, ln2/2] (Cephes expf).
    let mut p = I::F32::splat(1.987_569_1e-4);
    p = p.mul_add(r, I::F32::splat(1.398_199_9e-3));
    p = p.mul_add(r, I::F32::splat(8.333_452e-3));
    p = p.mul_add(r, I::F32::splat(4.166_579_6e-2));
    p = p.mul_add(r, I::F32::splat(1.666_666_6e-1));
    p = p.mul_add(r, I::F32::splat(0.5));
    let y = p.mul_add(r * r, r + I::F32::splat(1.0));

    // 2^n assembled directly in the exponent field.
    let n = fx.to_i32_trunc();
    let pow2n = I::F32::from_bits((n + I::I32::splat(127)) << 23);
    y * pow2n
}

/// Lane-wise natural logarithm.
///
/// Returns a platform-dependent garbage value (not a trap) for
/// non-positive or non-finite lanes, like SVML's fast variants; callers
/// in this workspace only pass positive finite values.
#[inline(always)]
pub fn ln<I: Isa>(x: I::F32) -> I::F32 {
    // Decompose x = m * 2^e with m in [sqrt(0.5), sqrt(2)).
    let bits = x.to_bits();
    let exp_raw = (bits >> 23) - I::I32::splat(127);
    // Mantissa with exponent forced to 0 => m in [1, 2).
    let mant_bits = (bits & I::I32::splat(0x007f_ffff)) | I::I32::splat(0x3f80_0000);
    let m = I::F32::from_bits(mant_bits);

    // Fold m into [sqrt(0.5), sqrt(2)): if m > sqrt(2), halve it and bump e.
    let sqrt2 = I::F32::splat(std::f32::consts::SQRT_2);
    let fold = m.simd_gt(sqrt2);
    let m = I::F32::select(fold, m * I::F32::splat(0.5), m);
    let e = I::F32::from_i32(I::I32::select(fold, exp_raw + I::I32::splat(1), exp_raw));

    // ln(m) via atanh identity: ln(m) = 2·atanh((m-1)/(m+1)).
    let one = I::F32::splat(1.0);
    let t = (m - one) / (m + one);
    let t2 = t * t;
    // Degree-4 polynomial in t^2 for 2*atanh(t)/t.
    let mut p = I::F32::splat(2.0 / 9.0);
    p = p.mul_add(t2, I::F32::splat(2.0 / 7.0));
    p = p.mul_add(t2, I::F32::splat(2.0 / 5.0));
    p = p.mul_add(t2, I::F32::splat(2.0 / 3.0));
    p = p.mul_add(t2, I::F32::splat(2.0));
    let ln_m = p * t;

    e.mul_add(I::F32::splat(std::f32::consts::LN_2), ln_m)
}

/// Lane-wise standard normal CDF (Abramowitz & Stegun 26.2.17, the
/// classic Black-Scholes CND).
#[inline(always)]
pub fn norm_cdf<I: Isa>(x: I::F32) -> I::F32 {
    let one = I::F32::splat(1.0);
    let ax = x.abs();
    let k = one / ax.mul_add(I::F32::splat(0.231_641_9), one);

    let mut poly = I::F32::splat(1.330_274_5);
    poly = poly.mul_add(k, I::F32::splat(-1.821_255_9));
    poly = poly.mul_add(k, I::F32::splat(1.781_477_9));
    poly = poly.mul_add(k, I::F32::splat(-0.356_563_78));
    poly = poly.mul_add(k, I::F32::splat(0.319_381_54));
    poly = poly * k;

    // phi(ax) = exp(-ax^2/2) / sqrt(2*pi)
    let inv_sqrt_2pi = I::F32::splat(0.398_942_3);
    let pdf = inv_sqrt_2pi * exp::<I>(-(ax * ax) * I::F32::splat(0.5));

    let cdf_pos = one - pdf * poly;
    // Reflect for negative inputs: N(-x) = 1 - N(x).
    I::F32::select(x.simd_ge(I::F32::zero()), cdf_pos, one - cdf_pos)
}

#[cfg(test)]
mod tests {
    use super::super::{available_kinds, dispatch_on, IsaKind, IsaOp, Scalar, Sse2};
    use super::*;
    use crate::math as concrete;
    use crate::F32x4;

    #[test]
    fn sse2_instantiation_matches_concrete_math_bitwise() {
        // The Sse2 backend reuses F32x4, so the generic functions must be
        // the same computation as crate::math lane for lane.
        let xs: Vec<f32> = (-400..400).map(|i| i as f32 * 0.21).collect();
        for c in xs.chunks_exact(4) {
            let v = F32x4::from_slice(c);
            assert_eq!(
                exp::<Sse2>(v).to_array(),
                concrete::exp_v4(v).to_array(),
                "exp at {c:?}"
            );
            assert_eq!(
                norm_cdf::<Sse2>(v).to_array(),
                concrete::norm_cdf_v4(v).to_array(),
                "norm_cdf at {c:?}"
            );
            let pos = v.abs() + F32x4::splat(1e-3);
            assert_eq!(
                ln::<Sse2>(pos).to_array(),
                concrete::ln_v4(pos).to_array(),
                "ln at {c:?}"
            );
        }
    }

    #[test]
    fn scalar_matches_std_functions() {
        for i in -860..880 {
            let x = i as f32 * 0.1;
            let got = exp::<Scalar>(crate::isa::scalar::ScalarF32(x)).0;
            let want = x.exp();
            let rel = (got - want).abs() / want.abs().max(1e-30);
            assert!(rel < 2e-6, "exp({x}) = {got}, want {want}");
        }
        for i in 1..2000 {
            let x = i as f32 * 0.05;
            let got = ln::<Scalar>(crate::isa::scalar::ScalarF32(x)).0;
            let rel = (got - x.ln()).abs() / x.ln().abs().max(1e-30);
            assert!(rel < 2e-6, "ln({x}) = {got}");
        }
        for i in -100..=100 {
            let x = i as f32 * 0.1;
            let got = norm_cdf::<Scalar>(crate::isa::scalar::ScalarF32(x)).0;
            let want = concrete::norm_cdf_scalar(x as f64) as f32;
            assert!((got - want).abs() < 2e-6, "norm_cdf({x}) = {got}");
        }
    }

    struct MathSweep;
    impl IsaOp for MathSweep {
        type Output = Vec<f32>;
        fn run<I: Isa>(self) -> Vec<f32> {
            let lanes = <I::F32 as SimdF32>::LANES;
            let xs: Vec<f32> = (0..64).map(|i| i as f32 * 0.37 - 11.0).collect();
            let mut out = vec![0.0; xs.len()];
            for (c, o) in xs.chunks_exact(lanes).zip(out.chunks_exact_mut(lanes)) {
                let v = I::F32::load(c);
                let y = norm_cdf::<I>(v) + exp::<I>(v) + ln::<I>(v.abs() + I::F32::splat(0.5));
                y.store(o);
            }
            out
        }
    }

    #[test]
    fn every_reachable_backend_agrees_on_a_sweep() {
        let reference = dispatch_on(IsaKind::Scalar, MathSweep);
        for kind in available_kinds() {
            let got = dispatch_on(kind, MathSweep);
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                let rel = (g - r).abs() / r.abs().max(1e-6);
                assert!(rel < 1e-5, "{kind} lane {i}: {g} vs scalar {r}");
            }
        }
    }
}
