//! The 128-bit NEON backend via `core::arch::aarch64`.
//!
//! Four `f32` lanes, two `f64` lanes, fused multiply-add. NEON has no
//! masked memory instructions, so masked loads/stores go lane-by-lane,
//! and `min`/`max` are built from compare+select rather than
//! `vminq`/`vmaxq` (whose NaN behaviour differs from the SSE convention
//! the [`Isa`] contract mandates).
//!
//! NEON (AdvSIMD) is architecturally mandatory on AArch64, so this
//! backend is always available there. Intrinsic calls are wrapped in
//! `unsafe` blocks for compatibility across stdarch versions where some
//! of them are still `unsafe fn`; the blocks are no-ops where they have
//! since become safe.
#![allow(unused_unsafe)]

use super::{Isa, SimdF32, SimdF64, SimdI32, SimdMask};
use core::arch::aarch64::*;
use core::fmt;
use core::ops::{Add, BitAnd, BitOr, Div, Mul, Neg, Shl, Shr, Sub};

/// Wraps an intrinsic call whose only effects are on register lanes.
macro_rules! neon {
    ($e:expr) => {
        // SAFETY: NEON is architecturally mandatory on AArch64 (the only
        // target this module compiles for); the intrinsic only reads and
        // writes register lanes.
        unsafe { $e }
    };
}

/// The 128-bit NEON backend (aarch64 only).
#[derive(Copy, Clone, Debug, Default)]
pub struct Neon;

impl Isa for Neon {
    const NAME: &'static str = "neon";
    const WIDTH_BITS: usize = 128;
    type F32 = NeonF32;
    type F64 = NeonF64;
    type I32 = NeonI32;
    type M32 = NeonM32;
    type M64 = NeonM64;

    #[inline]
    fn available() -> bool {
        true
    }
}

/// Mask over four 32-bit lanes (all-ones / all-zeros per lane).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct NeonM32(pub(crate) uint32x4_t);

impl NeonM32 {
    #[inline(always)]
    fn to_array(self) -> [u32; 4] {
        let mut out = [0u32; 4];
        // SAFETY: the store writes exactly 4 lanes into a local array of
        // that size; NEON is mandatory on aarch64.
        unsafe { vst1q_u32(out.as_mut_ptr(), self.0) };
        out
    }
}

impl fmt::Debug for NeonM32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NeonM32({:?})", self.to_array().map(|x| x != 0))
    }
}

impl SimdMask for NeonM32 {
    const LANES: usize = 4;

    #[inline(always)]
    fn none() -> Self {
        Self(neon!(vdupq_n_u32(0)))
    }

    #[inline(always)]
    fn all_true() -> Self {
        Self(neon!(vdupq_n_u32(u32::MAX)))
    }

    #[inline(always)]
    fn first_n(n: usize) -> Self {
        let l = |b: bool| if b { u32::MAX } else { 0 };
        let arr = [l(n >= 1), l(n >= 2), l(n >= 3), l(n >= 4)];
        // SAFETY: the load reads exactly 4 lanes from a local array of
        // that size; NEON is mandatory on aarch64.
        Self(unsafe { vld1q_u32(arr.as_ptr()) })
    }

    #[inline(always)]
    fn test(self, i: usize) -> bool {
        assert!(i < 4, "lane index out of range");
        self.to_array()[i] != 0
    }

    #[inline(always)]
    fn any(self) -> bool {
        neon!(vmaxvq_u32(self.0)) != 0
    }

    #[inline(always)]
    fn all(self) -> bool {
        neon!(vminvq_u32(self.0)) != 0
    }

    #[inline(always)]
    fn count(self) -> u32 {
        self.to_array().iter().map(|&x| (x != 0) as u32).sum()
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Self(neon!(vandq_u32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Self(neon!(vorrq_u32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn not(self) -> Self {
        Self(neon!(vmvnq_u32(self.0)))
    }
}

/// Mask over two 64-bit lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct NeonM64(pub(crate) uint64x2_t);

impl NeonM64 {
    #[inline(always)]
    fn to_array(self) -> [u64; 2] {
        let mut out = [0u64; 2];
        // SAFETY: the store writes exactly 2 lanes into a local array of
        // that size; NEON is mandatory on aarch64.
        unsafe { vst1q_u64(out.as_mut_ptr(), self.0) };
        out
    }
}

impl fmt::Debug for NeonM64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NeonM64({:?})", self.to_array().map(|x| x != 0))
    }
}

impl SimdMask for NeonM64 {
    const LANES: usize = 2;

    #[inline(always)]
    fn none() -> Self {
        Self(neon!(vdupq_n_u64(0)))
    }

    #[inline(always)]
    fn all_true() -> Self {
        Self(neon!(vdupq_n_u64(u64::MAX)))
    }

    #[inline(always)]
    fn first_n(n: usize) -> Self {
        let l = |b: bool| if b { u64::MAX } else { 0 };
        let arr = [l(n >= 1), l(n >= 2)];
        // SAFETY: the load reads exactly 2 lanes from a local array of
        // that size; NEON is mandatory on aarch64.
        Self(unsafe { vld1q_u64(arr.as_ptr()) })
    }

    #[inline(always)]
    fn test(self, i: usize) -> bool {
        assert!(i < 2, "lane index out of range");
        self.to_array()[i] != 0
    }

    #[inline(always)]
    fn any(self) -> bool {
        let a = self.to_array();
        a[0] != 0 || a[1] != 0
    }

    #[inline(always)]
    fn all(self) -> bool {
        let a = self.to_array();
        a[0] != 0 && a[1] != 0
    }

    #[inline(always)]
    fn count(self) -> u32 {
        let a = self.to_array();
        (a[0] != 0) as u32 + (a[1] != 0) as u32
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Self(neon!(vandq_u64(self.0, rhs.0)))
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Self(neon!(vorrq_u64(self.0, rhs.0)))
    }

    #[inline(always)]
    fn not(self) -> Self {
        Self(neon!(veorq_u64(self.0, vdupq_n_u64(u64::MAX))))
    }
}

/// A vector of four `f32` lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct NeonF32(pub(crate) float32x4_t);

impl NeonF32 {
    #[inline(always)]
    fn to_array(self) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        // SAFETY: the store writes exactly 4 lanes into a local array of
        // that size; NEON is mandatory on aarch64.
        unsafe { vst1q_f32(out.as_mut_ptr(), self.0) };
        out
    }
}

impl fmt::Debug for NeonF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NeonF32({:?})", self.to_array())
    }
}

impl Add for NeonF32 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(neon!(vaddq_f32(self.0, rhs.0)))
    }
}

impl Sub for NeonF32 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(neon!(vsubq_f32(self.0, rhs.0)))
    }
}

impl Mul for NeonF32 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(neon!(vmulq_f32(self.0, rhs.0)))
    }
}

impl Div for NeonF32 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        Self(neon!(vdivq_f32(self.0, rhs.0)))
    }
}

impl Neg for NeonF32 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self(neon!(vnegq_f32(self.0)))
    }
}

impl SimdF32 for NeonF32 {
    const LANES: usize = 4;
    type Mask = NeonM32;
    type I32 = NeonI32;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        Self(neon!(vdupq_n_f32(v)))
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        assert!(src.len() >= 4, "NeonF32::load needs at least 4 elements");
        // SAFETY: the assert above guarantees 4 readable elements.
        Self(unsafe { vld1q_f32(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        assert!(dst.len() >= 4, "NeonF32::store needs at least 4 elements");
        // SAFETY: the assert above guarantees 4 writable elements.
        unsafe { vst1q_f32(dst.as_mut_ptr(), self.0) };
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be readable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn load_ptr_mask(ptr: *const f32, mask: Self::Mask) -> Self {
        let m = mask.to_array();
        let mut tmp = [0.0f32; 4];
        for (i, t) in tmp.iter_mut().enumerate() {
            if m[i] != 0 {
                // SAFETY: the caller guarantees `ptr + i` is readable for
                // every lane the mask enables; false lanes stay zero.
                *t = unsafe { ptr.add(i).read() };
            }
        }
        // SAFETY: the load reads exactly 4 lanes from a local array.
        Self(unsafe { vld1q_f32(tmp.as_ptr()) })
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be writable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn store_ptr_mask(self, ptr: *mut f32, mask: Self::Mask) {
        let m = mask.to_array();
        let tmp = self.to_array();
        for (i, t) in tmp.iter().enumerate() {
            if m[i] != 0 {
                // SAFETY: the caller guarantees `ptr + i` is writable for
                // every lane the mask enables; false lanes are untouched.
                unsafe { ptr.add(i).write(*t) };
            }
        }
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f32 {
        self.to_array()[i]
    }

    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        // vfmaq(acc, x, y) = acc + x*y, fused.
        Self(neon!(vfmaq_f32(a.0, self.0, m.0)))
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        // Compare+select rather than vminq so NaN lanes resolve to the
        // second operand, matching the SSE convention in the contract.
        Self(neon!(vbslq_f32(vcltq_f32(self.0, rhs.0), self.0, rhs.0)))
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self(neon!(vbslq_f32(vcgtq_f32(self.0, rhs.0), self.0, rhs.0)))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        Self(neon!(vabsq_f32(self.0)))
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        Self(neon!(vsqrtq_f32(self.0)))
    }

    #[inline(always)]
    fn floor(self) -> Self {
        Self(neon!(vrndmq_f32(self.0)))
    }

    #[inline(always)]
    fn simd_eq(self, rhs: Self) -> Self::Mask {
        NeonM32(neon!(vceqq_f32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        NeonM32(neon!(vcltq_f32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_le(self, rhs: Self) -> Self::Mask {
        NeonM32(neon!(vcleq_f32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        NeonM32(neon!(vcgtq_f32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_ge(self, rhs: Self) -> Self::Mask {
        NeonM32(neon!(vcgeq_f32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        Self(neon!(vbslq_f32(mask.0, on_true.0, on_false.0)))
    }

    #[inline(always)]
    fn to_i32_trunc(self) -> Self::I32 {
        NeonI32(neon!(vcvtq_s32_f32(self.0)))
    }

    #[inline(always)]
    fn from_i32(v: Self::I32) -> Self {
        Self(neon!(vcvtq_f32_s32(v.0)))
    }

    #[inline(always)]
    fn from_bits(bits: Self::I32) -> Self {
        Self(neon!(vreinterpretq_f32_s32(bits.0)))
    }

    #[inline(always)]
    fn to_bits(self) -> Self::I32 {
        NeonI32(neon!(vreinterpretq_s32_f32(self.0)))
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        neon!(vaddvq_f32(self.0))
    }

    #[inline(always)]
    fn reduce_min(self) -> f32 {
        let m = |x: f32, y: f32| if x < y { x } else { y };
        self.to_array().into_iter().reduce(m).unwrap()
    }

    #[inline(always)]
    fn reduce_max(self) -> f32 {
        let m = |x: f32, y: f32| if x > y { x } else { y };
        self.to_array().into_iter().reduce(m).unwrap()
    }

    #[inline(always)]
    fn gather(table: &[f32], idx: Self::I32) -> Self {
        let i = idx.to_array();
        let pick = |k: i32| table[usize::try_from(k).expect("negative gather index")];
        let arr = [pick(i[0]), pick(i[1]), pick(i[2]), pick(i[3])];
        // SAFETY: the load reads exactly 4 lanes from a local array.
        Self(unsafe { vld1q_f32(arr.as_ptr()) })
    }

    #[inline(always)]
    fn interleave(self, rhs: Self) -> (Self, Self) {
        let lo = neon!(vzip1q_f32(self.0, rhs.0));
        let hi = neon!(vzip2q_f32(self.0, rhs.0));
        (Self(lo), Self(hi))
    }
}

/// A vector of two `f64` lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct NeonF64(pub(crate) float64x2_t);

impl NeonF64 {
    #[inline(always)]
    fn to_array(self) -> [f64; 2] {
        let mut out = [0.0f64; 2];
        // SAFETY: the store writes exactly 2 lanes into a local array of
        // that size; NEON is mandatory on aarch64.
        unsafe { vst1q_f64(out.as_mut_ptr(), self.0) };
        out
    }
}

impl fmt::Debug for NeonF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NeonF64({:?})", self.to_array())
    }
}

impl Add for NeonF64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(neon!(vaddq_f64(self.0, rhs.0)))
    }
}

impl Sub for NeonF64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(neon!(vsubq_f64(self.0, rhs.0)))
    }
}

impl Mul for NeonF64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(neon!(vmulq_f64(self.0, rhs.0)))
    }
}

impl Div for NeonF64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        Self(neon!(vdivq_f64(self.0, rhs.0)))
    }
}

impl Neg for NeonF64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self(neon!(vnegq_f64(self.0)))
    }
}

impl SimdF64 for NeonF64 {
    const LANES: usize = 2;
    type Mask = NeonM64;

    #[inline(always)]
    fn splat(v: f64) -> Self {
        Self(neon!(vdupq_n_f64(v)))
    }

    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        assert!(src.len() >= 2, "NeonF64::load needs at least 2 elements");
        // SAFETY: the assert above guarantees 2 readable elements.
        Self(unsafe { vld1q_f64(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        assert!(dst.len() >= 2, "NeonF64::store needs at least 2 elements");
        // SAFETY: the assert above guarantees 2 writable elements.
        unsafe { vst1q_f64(dst.as_mut_ptr(), self.0) };
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be readable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn load_ptr_mask(ptr: *const f64, mask: Self::Mask) -> Self {
        let m = mask.to_array();
        let mut tmp = [0.0f64; 2];
        for (i, t) in tmp.iter_mut().enumerate() {
            if m[i] != 0 {
                // SAFETY: the caller guarantees `ptr + i` is readable for
                // every lane the mask enables; false lanes stay zero.
                *t = unsafe { ptr.add(i).read() };
            }
        }
        // SAFETY: the load reads exactly 2 lanes from a local array.
        Self(unsafe { vld1q_f64(tmp.as_ptr()) })
    }

    // SAFETY: unsafe to call per the trait contract — every lane the
    // mask enables must be writable at `ptr + lane`; the body touches
    // no other lane.
    #[inline(always)]
    unsafe fn store_ptr_mask(self, ptr: *mut f64, mask: Self::Mask) {
        let m = mask.to_array();
        let tmp = self.to_array();
        for (i, t) in tmp.iter().enumerate() {
            if m[i] != 0 {
                // SAFETY: the caller guarantees `ptr + i` is writable for
                // every lane the mask enables; false lanes are untouched.
                unsafe { ptr.add(i).write(*t) };
            }
        }
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f64 {
        self.to_array()[i]
    }

    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        Self(neon!(vfmaq_f64(a.0, self.0, m.0)))
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        Self(neon!(vbslq_f64(vcltq_f64(self.0, rhs.0), self.0, rhs.0)))
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self(neon!(vbslq_f64(vcgtq_f64(self.0, rhs.0), self.0, rhs.0)))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        Self(neon!(vabsq_f64(self.0)))
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        Self(neon!(vsqrtq_f64(self.0)))
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        NeonM64(neon!(vcltq_f64(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        NeonM64(neon!(vcgtq_f64(self.0, rhs.0)))
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        Self(neon!(vbslq_f64(mask.0, on_true.0, on_false.0)))
    }

    #[inline(always)]
    fn reduce_sum(self) -> f64 {
        neon!(vaddvq_f64(self.0))
    }
}

/// A vector of four `i32` lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct NeonI32(pub(crate) int32x4_t);

impl NeonI32 {
    #[inline(always)]
    fn to_array(self) -> [i32; 4] {
        let mut out = [0i32; 4];
        // SAFETY: the store writes exactly 4 lanes into a local array of
        // that size; NEON is mandatory on aarch64.
        unsafe { vst1q_s32(out.as_mut_ptr(), self.0) };
        out
    }
}

impl fmt::Debug for NeonI32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NeonI32({:?})", self.to_array())
    }
}

impl Add for NeonI32 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(neon!(vaddq_s32(self.0, rhs.0)))
    }
}

impl Sub for NeonI32 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(neon!(vsubq_s32(self.0, rhs.0)))
    }
}

impl Mul for NeonI32 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(neon!(vmulq_s32(self.0, rhs.0)))
    }
}

impl BitAnd for NeonI32 {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        Self(neon!(vandq_s32(self.0, rhs.0)))
    }
}

impl BitOr for NeonI32 {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        Self(neon!(vorrq_s32(self.0, rhs.0)))
    }
}

impl Shl<i32> for NeonI32 {
    type Output = Self;
    #[inline(always)]
    fn shl(self, shift: i32) -> Self {
        Self(neon!(vshlq_s32(self.0, vdupq_n_s32(shift))))
    }
}

impl Shr<i32> for NeonI32 {
    type Output = Self;
    /// Arithmetic (sign-extending) right shift.
    #[inline(always)]
    fn shr(self, shift: i32) -> Self {
        // NEON shifts left by a signed amount; negate for a right shift.
        Self(neon!(vshlq_s32(self.0, vdupq_n_s32(-shift))))
    }
}

impl SimdI32 for NeonI32 {
    const LANES: usize = 4;
    type Mask = NeonM32;

    #[inline(always)]
    fn splat(v: i32) -> Self {
        Self(neon!(vdupq_n_s32(v)))
    }

    #[inline(always)]
    fn load(src: &[i32]) -> Self {
        assert!(src.len() >= 4, "NeonI32::load needs at least 4 elements");
        // SAFETY: the assert above guarantees 4 readable elements.
        Self(unsafe { vld1q_s32(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32]) {
        assert!(dst.len() >= 4, "NeonI32::store needs at least 4 elements");
        // SAFETY: the assert above guarantees 4 writable elements.
        unsafe { vst1q_s32(dst.as_mut_ptr(), self.0) };
    }

    #[inline(always)]
    fn lane(self, i: usize) -> i32 {
        self.to_array()[i]
    }

    #[inline(always)]
    fn simd_eq(self, rhs: Self) -> Self::Mask {
        NeonM32(neon!(vceqq_s32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_gt(self, rhs: Self) -> Self::Mask {
        NeonM32(neon!(vcgtq_s32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Self::Mask {
        NeonM32(neon!(vcltq_s32(self.0, rhs.0)))
    }

    #[inline(always)]
    fn select(mask: Self::Mask, on_true: Self, on_false: Self) -> Self {
        Self(neon!(vbslq_s32(mask.0, on_true.0, on_false.0)))
    }

    #[inline(always)]
    fn reduce_sum(self) -> i32 {
        self.to_array().into_iter().fold(0i32, i32::wrapping_add)
    }
}
