//! 4-lane single-precision vector — the paper's native (SSE) vector width.

use crate::masks::Mask32x4;
use crate::I32x4;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// A vector of four `f32` lanes.
///
/// All operations are lane-wise unless documented otherwise. On `x86_64`
/// this type is an `__m128`; elsewhere it is a `[f32; 4]` with identical
/// semantics.
///
/// ```
/// use ninja_simd::F32x4;
/// let v = F32x4::new(1.0, 2.0, 3.0, 4.0) * F32x4::splat(2.0);
/// assert_eq!(v.to_array(), [2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F32x4(pub(crate) Repr);

#[cfg(target_arch = "x86_64")]
pub(crate) type Repr = __m128;
#[cfg(not(target_arch = "x86_64"))]
pub(crate) type Repr = [f32; 4];

impl F32x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// Builds a vector with the given lanes, lane 0 first.
    #[inline(always)]
    pub fn new(x0: f32, x1: f32, x2: f32, x3: f32) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_set_ps(x3, x2, x1, x0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([x0, x1, x2, x3])
        }
    }

    /// Broadcasts `v` to all lanes.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_set1_ps(v))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([v; 4])
        }
    }

    /// The all-zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_setzero_ps())
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([0.0; 4])
        }
    }

    /// Loads four consecutive lanes from `slice` starting at index 0.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 4`.
    #[inline(always)]
    pub fn from_slice(slice: &[f32]) -> Self {
        assert!(
            slice.len() >= 4,
            "F32x4::from_slice needs at least 4 elements"
        );
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the slice/array length is checked above, so the unaligned load/store stays in bounds; SSE2 is baseline on x86_64.
        unsafe {
            Self(_mm_loadu_ps(slice.as_ptr()))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([slice[0], slice[1], slice[2], slice[3]])
        }
    }

    /// Converts an array into a vector (lane 0 = `a[0]`).
    #[inline(always)]
    pub fn from_array(a: [f32; 4]) -> Self {
        Self::new(a[0], a[1], a[2], a[3])
    }

    /// Returns the lanes as an array (lane 0 = `a[0]`).
    #[inline(always)]
    pub fn to_array(self) -> [f32; 4] {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the unaligned store writes exactly LANES elements into a local array of that size; SSE2 is baseline on x86_64.
        unsafe {
            let mut out = [0.0f32; 4];
            _mm_storeu_ps(out.as_mut_ptr(), self.0);
            out
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.0
        }
    }

    /// Stores the four lanes into `slice[..4]`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 4`.
    #[inline(always)]
    pub fn write_to_slice(self, slice: &mut [f32]) {
        assert!(
            slice.len() >= 4,
            "F32x4::write_to_slice needs at least 4 elements"
        );
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the slice/array length is checked above, so the unaligned load/store stays in bounds; SSE2 is baseline on x86_64.
        unsafe {
            _mm_storeu_ps(slice.as_mut_ptr(), self.0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            slice[..4].copy_from_slice(&self.0);
        }
    }

    /// Returns lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline(always)]
    pub fn lane(self, i: usize) -> f32 {
        self.to_array()[i]
    }

    /// Lane-wise fused-style multiply-add: `self * m + a`.
    ///
    /// On machines without FMA this is an unfused multiply then add; the
    /// Ninja-gap kernels only rely on the value, not on single-rounding.
    #[inline(always)]
    pub fn mul_add(self, m: Self, a: Self) -> Self {
        self * m + a
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_min_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self(lanewise2(self.0, rhs.0, |a, b| if a < b { a } else { b }))
        }
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_max_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self(lanewise2(self.0, rhs.0, |a, b| if a > b { a } else { b }))
        }
    }

    /// Lane-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            let sign_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
            Self(_mm_and_ps(self.0, sign_mask))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self(lanewise1(self.0, f32::abs))
        }
    }

    /// Lane-wise IEEE square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_sqrt_ps(self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self(lanewise1(self.0, f32::sqrt))
        }
    }

    /// Fast approximate reciprocal square root (~12-bit accuracy).
    ///
    /// This is the `rsqrtps` trick at the heart of Ninja N-body kernels.
    /// Use [`F32x4::rsqrt`] for a Newton-refined (~23-bit) result.
    #[inline(always)]
    pub fn rsqrt_approx(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_rsqrt_ps(self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self(lanewise1(self.0, |a| 1.0 / a.sqrt()))
        }
    }

    /// Reciprocal square root refined with one Newton-Raphson step.
    ///
    /// Accuracy is ~1 ulp of `1.0 / x.sqrt()` for normal positive inputs,
    /// at roughly half the cost of a division plus square root.
    #[inline(always)]
    pub fn rsqrt(self) -> Self {
        let approx = self.rsqrt_approx();
        // y' = y * (1.5 - 0.5 * x * y * y)
        let half = Self::splat(0.5);
        let three_halves = Self::splat(1.5);
        approx * (three_halves - half * self * approx * approx)
    }

    /// Fast approximate reciprocal (~12-bit accuracy).
    #[inline(always)]
    pub fn recip_approx(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_rcp_ps(self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self(lanewise1(self.0, |a| 1.0 / a))
        }
    }

    /// Reciprocal refined with one Newton-Raphson step (~22-bit accuracy).
    #[inline(always)]
    pub fn recip(self) -> Self {
        let approx = self.recip_approx();
        // y' = y * (2 - x * y)
        approx * (Self::splat(2.0) - self * approx)
    }

    /// Lane-wise floor.
    ///
    /// Exact for inputs with `|x| < 2^31`; the sampling kernels that use it
    /// (volume rendering, back-projection) index arrays far smaller than
    /// that.
    #[inline(always)]
    pub fn floor(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            let t = _mm_cvtepi32_ps(_mm_cvttps_epi32(self.0)); // trunc toward zero
            let gt = _mm_cmpgt_ps(t, self.0); // lanes where trunc overshot (negative non-integers)
            let one = _mm_and_ps(gt, _mm_set1_ps(1.0));
            Self(_mm_sub_ps(t, one))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self(lanewise1(self.0, f32::floor))
        }
    }

    /// Converts lanes to `i32` with truncation toward zero.
    #[inline(always)]
    pub fn to_i32_trunc(self) -> I32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            I32x4(_mm_cvttps_epi32(self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            I32x4([a[0] as i32, a[1] as i32, a[2] as i32, a[3] as i32])
        }
    }

    /// Sum of all four lanes.
    #[inline(always)]
    pub fn reduce_sum(self) -> f32 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            let v = self.0;
            let shuf = _mm_shuffle_ps::<0b10_11_00_01>(v, v); // [1,0,3,2]
            let sums = _mm_add_ps(v, shuf);
            let shuf2 = _mm_movehl_ps(shuf, sums); // [2+3, ...]
            let total = _mm_add_ss(sums, shuf2);
            _mm_cvtss_f32(total)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            (a[0] + a[1]) + (a[2] + a[3])
        }
    }

    /// Minimum over all four lanes.
    #[inline(always)]
    pub fn reduce_min(self) -> f32 {
        let a = self.to_array();
        let m01 = if a[0] < a[1] { a[0] } else { a[1] };
        let m23 = if a[2] < a[3] { a[2] } else { a[3] };
        if m01 < m23 {
            m01
        } else {
            m23
        }
    }

    /// Maximum over all four lanes.
    #[inline(always)]
    pub fn reduce_max(self) -> f32 {
        let a = self.to_array();
        let m01 = if a[0] > a[1] { a[0] } else { a[1] };
        let m23 = if a[2] > a[3] { a[2] } else { a[3] };
        if m01 > m23 {
            m01
        } else {
            m23
        }
    }

    /// Lane-wise `==` comparison.
    #[inline(always)]
    pub fn simd_eq(self, rhs: Self) -> Mask32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Mask32x4(_mm_cmpeq_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Mask32x4(cmp_lanes(self.0, rhs.0, |a, b| a == b))
        }
    }

    /// Lane-wise `<` comparison.
    #[inline(always)]
    pub fn simd_lt(self, rhs: Self) -> Mask32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Mask32x4(_mm_cmplt_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Mask32x4(cmp_lanes(self.0, rhs.0, |a, b| a < b))
        }
    }

    /// Lane-wise `<=` comparison.
    #[inline(always)]
    pub fn simd_le(self, rhs: Self) -> Mask32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Mask32x4(_mm_cmple_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Mask32x4(cmp_lanes(self.0, rhs.0, |a, b| a <= b))
        }
    }

    /// Lane-wise `>` comparison.
    #[inline(always)]
    pub fn simd_gt(self, rhs: Self) -> Mask32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Mask32x4(_mm_cmpgt_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Mask32x4(cmp_lanes(self.0, rhs.0, |a, b| a > b))
        }
    }

    /// Lane-wise `>=` comparison.
    #[inline(always)]
    pub fn simd_ge(self, rhs: Self) -> Mask32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Mask32x4(_mm_cmpge_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Mask32x4(cmp_lanes(self.0, rhs.0, |a, b| a >= b))
        }
    }

    /// Reinterprets the integer lanes of `bits` as IEEE-754 `f32` lanes.
    ///
    /// Used by the vector transcendentals to assemble `2^n` from a biased
    /// exponent.
    #[inline(always)]
    pub fn from_bits(bits: I32x4) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_castsi128_ps(bits.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = bits.to_array();
            Self::new(
                f32::from_bits(a[0] as u32),
                f32::from_bits(a[1] as u32),
                f32::from_bits(a[2] as u32),
                f32::from_bits(a[3] as u32),
            )
        }
    }

    /// Reinterprets the `f32` lanes as their IEEE-754 bit patterns.
    #[inline(always)]
    pub fn to_bits(self) -> I32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            I32x4(_mm_castps_si128(self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            I32x4::new(
                a[0].to_bits() as i32,
                a[1].to_bits() as i32,
                a[2].to_bits() as i32,
                a[3].to_bits() as i32,
            )
        }
    }

    /// Software gather: `[base[idx.lane(0)], .., base[idx.lane(3)]]`.
    ///
    /// The paper's hardware-programmability discussion (our experiment F7)
    /// centers on exactly this operation: without hardware gather the Ninja
    /// programmer pays four scalar loads plus packing, which this function
    /// makes explicit.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or negative.
    #[inline(always)]
    pub fn gather(base: &[f32], idx: I32x4) -> Self {
        let i = idx.to_array();
        Self::new(
            base[i[0] as usize],
            base[i[1] as usize],
            base[i[2] as usize],
            base[i[3] as usize],
        )
    }

    /// Interleaves the low halves of `self` and `rhs`:
    /// `[a0, b0, a1, b1]`.
    #[inline(always)]
    pub fn interleave_lo(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_unpacklo_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            let b = rhs.0;
            Self([a[0], b[0], a[1], b[1]])
        }
    }

    /// Interleaves the high halves of `self` and `rhs`:
    /// `[a2, b2, a3, b3]`.
    #[inline(always)]
    pub fn interleave_hi(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_unpackhi_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            let b = rhs.0;
            Self([a[2], b[2], a[3], b[3]])
        }
    }

    /// Rotates lanes left by one: `[a1, a2, a3, a0]`.
    #[inline(always)]
    pub fn rotate_lanes_left(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_shuffle_ps::<0b00_11_10_01>(self.0, self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            Self([a[1], a[2], a[3], a[0]])
        }
    }

    /// Swaps the 64-bit halves: `[a2, a3, a0, a1]`.
    ///
    /// One of the two shuffles needed by the bitonic merge network in the
    /// Ninja merge-sort kernel.
    #[inline(always)]
    pub fn swap_halves(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_shuffle_ps::<0b01_00_11_10>(self.0, self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            Self([a[2], a[3], a[0], a[1]])
        }
    }

    /// Swaps adjacent lanes: `[a1, a0, a3, a2]`.
    #[inline(always)]
    pub fn swap_pairs(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_shuffle_ps::<0b10_11_00_01>(self.0, self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            Self([a[1], a[0], a[3], a[2]])
        }
    }

    /// Lane-wise clamp to `[lo, hi]` (`min` then `max`, like `clamp_ps`
    /// idioms; NaN handling follows the underlying min/max).
    #[inline(always)]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        self.max(lo).min(hi)
    }

    /// Transposes a 4×4 matrix held in four row registers — the classic
    /// `_MM_TRANSPOSE4_PS` idiom Ninja code uses to convert four AoS
    /// records into SoA registers (and back).
    ///
    /// ```
    /// use ninja_simd::F32x4;
    /// let rows = [
    ///     F32x4::new(0.0, 1.0, 2.0, 3.0),
    ///     F32x4::new(10.0, 11.0, 12.0, 13.0),
    ///     F32x4::new(20.0, 21.0, 22.0, 23.0),
    ///     F32x4::new(30.0, 31.0, 32.0, 33.0),
    /// ];
    /// let cols = F32x4::transpose4(rows);
    /// assert_eq!(cols[1].to_array(), [1.0, 11.0, 21.0, 31.0]);
    /// ```
    #[inline(always)]
    pub fn transpose4(rows: [Self; 4]) -> [Self; 4] {
        let t0 = rows[0].interleave_lo(rows[2]); // a0 c0 a1 c1
        let t1 = rows[1].interleave_lo(rows[3]); // b0 d0 b1 d1
        let t2 = rows[0].interleave_hi(rows[2]); // a2 c2 a3 c3
        let t3 = rows[1].interleave_hi(rows[3]); // b2 d2 b3 d3
        [
            t0.interleave_lo(t1), // a0 b0 c0 d0
            t0.interleave_hi(t1), // a1 b1 c1 d1
            t2.interleave_lo(t3), // a2 b2 c2 d2
            t2.interleave_hi(t3), // a3 b3 c3 d3
        ]
    }

    /// Reverses the lane order: `[a3, a2, a1, a0]`.
    #[inline(always)]
    pub fn reverse_lanes(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_shuffle_ps::<0b00_01_10_11>(self.0, self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            Self([a[3], a[2], a[1], a[0]])
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn lanewise1(a: [f32; 4], f: impl Fn(f32) -> f32) -> [f32; 4] {
    [f(a[0]), f(a[1]), f(a[2]), f(a[3])]
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub(crate) fn lanewise2(a: [f32; 4], b: [f32; 4], f: impl Fn(f32, f32) -> f32) -> [f32; 4] {
    [f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])]
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn cmp_lanes(a: [f32; 4], b: [f32; 4], f: impl Fn(f32, f32) -> bool) -> [u32; 4] {
    let m = |x: bool| if x { u32::MAX } else { 0 };
    [
        m(f(a[0], b[0])),
        m(f(a[1], b[1])),
        m(f(a[2], b[2])),
        m(f(a[3], b[3])),
    ]
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $intrinsic:ident, $op:tt) => {
        impl $trait for F32x4 {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
                unsafe {
                    Self($intrinsic(self.0, rhs.0))
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    Self(lanewise2(self.0, rhs.0, |a, b| a $op b))
                }
            }
        }
        impl $assign_trait for F32x4 {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: Self) {
                *self = $trait::$method(*self, rhs);
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, _mm_add_ps, +);
impl_binop!(Sub, sub, SubAssign, sub_assign, _mm_sub_ps, -);
impl_binop!(Mul, mul, MulAssign, mul_assign, _mm_mul_ps, *);
impl_binop!(Div, div, DivAssign, div_assign, _mm_div_ps, /);

impl Neg for F32x4 {
    type Output = Self;
    /// IEEE negation: flips the sign bit, so `-(±0.0)` is `∓0.0`
    /// (`0.0 - x` would lose the zero's sign).
    #[inline(always)]
    fn neg(self) -> Self {
        Self::from_bits(self.to_bits() ^ I32x4::splat(i32::MIN))
    }
}

impl Default for F32x4 {
    #[inline]
    fn default() -> Self {
        Self::zero()
    }
}

impl PartialEq for F32x4 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.to_array() == other.to_array()
    }
}

impl fmt::Debug for F32x4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.to_array();
        write!(f, "F32x4({}, {}, {}, {})", a[0], a[1], a[2], a[3])
    }
}

impl From<[f32; 4]> for F32x4 {
    #[inline]
    fn from(a: [f32; 4]) -> Self {
        Self::from_array(a)
    }
}

impl From<F32x4> for [f32; 4] {
    #[inline]
    fn from(v: F32x4) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(a: f32, b: f32, c: f32, d: f32) -> F32x4 {
        F32x4::new(a, b, c, d)
    }

    #[test]
    fn construct_and_extract() {
        let x = v(1.0, 2.0, 3.0, 4.0);
        assert_eq!(x.to_array(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.lane(0), 1.0);
        assert_eq!(x.lane(3), 4.0);
        assert_eq!(F32x4::splat(7.5).to_array(), [7.5; 4]);
        assert_eq!(F32x4::zero().to_array(), [0.0; 4]);
        assert_eq!(F32x4::default(), F32x4::zero());
    }

    #[test]
    fn slice_roundtrip() {
        let data = [9.0, 8.0, 7.0, 6.0, 5.0];
        let x = F32x4::from_slice(&data);
        assert_eq!(x.to_array(), [9.0, 8.0, 7.0, 6.0]);
        let mut out = [0.0f32; 5];
        x.write_to_slice(&mut out);
        assert_eq!(out, [9.0, 8.0, 7.0, 6.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn short_slice_panics() {
        let _ = F32x4::from_slice(&[1.0, 2.0]);
    }

    #[test]
    fn arithmetic() {
        let a = v(1.0, 2.0, 3.0, 4.0);
        let b = v(10.0, 20.0, 30.0, 40.0);
        assert_eq!((a + b).to_array(), [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).to_array(), [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).to_array(), [10.0, 40.0, 90.0, 160.0]);
        assert_eq!((b / a).to_array(), [10.0; 4]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
        let mut c = a;
        c += b;
        c -= a;
        c *= F32x4::splat(2.0);
        c /= F32x4::splat(4.0);
        assert_eq!(c.to_array(), [5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = v(1.5, -2.0, 3.25, 0.0);
        let m = v(2.0, 2.0, -1.0, 5.0);
        let c = v(0.5, 0.5, 0.5, 0.5);
        assert_eq!(a.mul_add(m, c).to_array(), (a * m + c).to_array());
    }

    #[test]
    fn min_max_abs() {
        let a = v(1.0, -5.0, 3.0, -0.5);
        let b = v(0.0, -4.0, 9.0, -1.0);
        assert_eq!(a.min(b).to_array(), [0.0, -5.0, 3.0, -1.0]);
        assert_eq!(a.max(b).to_array(), [1.0, -4.0, 9.0, -0.5]);
        assert_eq!(a.abs().to_array(), [1.0, 5.0, 3.0, 0.5]);
    }

    #[test]
    fn sqrt_and_rsqrt() {
        let a = v(4.0, 9.0, 16.0, 25.0);
        assert_eq!(a.sqrt().to_array(), [2.0, 3.0, 4.0, 5.0]);
        let r = a.rsqrt().to_array();
        let expect = [0.5, 1.0 / 3.0, 0.25, 0.2];
        for i in 0..4 {
            assert!(
                (r[i] - expect[i]).abs() < 1e-5,
                "lane {i}: {} vs {}",
                r[i],
                expect[i]
            );
        }
    }

    #[test]
    fn recip_refined() {
        let a = v(2.0, 4.0, 0.5, 8.0);
        let r = a.recip().to_array();
        let expect = [0.5, 0.25, 2.0, 0.125];
        for i in 0..4 {
            assert!((r[i] - expect[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn floor_handles_negatives() {
        let a = v(1.5, -1.5, 2.0, -2.0);
        assert_eq!(a.floor().to_array(), [1.0, -2.0, 2.0, -2.0]);
        let b = v(0.99, -0.01, -0.99, 0.0);
        assert_eq!(b.floor().to_array(), [0.0, -1.0, -1.0, 0.0]);
    }

    #[test]
    fn conversions_to_int() {
        let a = v(1.9, -1.9, 3.0, 0.2);
        assert_eq!(a.to_i32_trunc().to_array(), [1, -1, 3, 0]);
    }

    #[test]
    fn reductions() {
        let a = v(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.reduce_sum(), 10.0);
        assert_eq!(a.reduce_min(), 1.0);
        assert_eq!(a.reduce_max(), 4.0);
        let b = v(-1.0, 7.0, -3.0, 2.0);
        assert_eq!(b.reduce_min(), -3.0);
        assert_eq!(b.reduce_max(), 7.0);
    }

    #[test]
    fn comparisons_and_select() {
        let a = v(1.0, 2.0, 3.0, 4.0);
        let b = v(4.0, 2.0, 1.0, 4.0);
        assert_eq!(a.simd_eq(b).bitmask(), 0b1010);
        assert_eq!(a.simd_lt(b).bitmask(), 0b0001);
        assert_eq!(a.simd_le(b).bitmask(), 0b1011);
        assert_eq!(a.simd_gt(b).bitmask(), 0b0100);
        assert_eq!(a.simd_ge(b).bitmask(), 0b1110);
        let sel = a.simd_lt(b).select(F32x4::splat(1.0), F32x4::splat(0.0));
        assert_eq!(sel.to_array(), [1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_reads_indexed_lanes() {
        let table: Vec<f32> = (0..16).map(|i| i as f32 * 10.0).collect();
        let idx = I32x4::new(3, 0, 15, 7);
        let g = F32x4::gather(&table, idx);
        assert_eq!(g.to_array(), [30.0, 0.0, 150.0, 70.0]);
    }

    #[test]
    #[should_panic]
    fn gather_out_of_bounds_panics() {
        let table = [1.0f32; 4];
        let _ = F32x4::gather(&table, I32x4::new(0, 1, 2, 9));
    }

    #[test]
    fn shuffles() {
        let a = v(0.0, 1.0, 2.0, 3.0);
        let b = v(10.0, 11.0, 12.0, 13.0);
        assert_eq!(a.interleave_lo(b).to_array(), [0.0, 10.0, 1.0, 11.0]);
        assert_eq!(a.interleave_hi(b).to_array(), [2.0, 12.0, 3.0, 13.0]);
        assert_eq!(a.rotate_lanes_left().to_array(), [1.0, 2.0, 3.0, 0.0]);
        assert_eq!(a.reverse_lanes().to_array(), [3.0, 2.0, 1.0, 0.0]);
        assert_eq!(a.swap_halves().to_array(), [2.0, 3.0, 0.0, 1.0]);
        assert_eq!(a.swap_pairs().to_array(), [1.0, 0.0, 3.0, 2.0]);
    }

    #[test]
    fn clamp_limits_lanes() {
        let x = v(-5.0, 0.5, 2.0, 99.0);
        let c = x.clamp(F32x4::splat(0.0), F32x4::splat(1.0));
        assert_eq!(c.to_array(), [0.0, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let rows = [
            v(0.0, 1.0, 2.0, 3.0),
            v(4.0, 5.0, 6.0, 7.0),
            v(8.0, 9.0, 10.0, 11.0),
            v(12.0, 13.0, 14.0, 15.0),
        ];
        let cols = F32x4::transpose4(rows);
        assert_eq!(cols[0].to_array(), [0.0, 4.0, 8.0, 12.0]);
        assert_eq!(cols[3].to_array(), [3.0, 7.0, 11.0, 15.0]);
        let back = F32x4::transpose4(cols);
        for (r, b) in rows.iter().zip(back.iter()) {
            assert_eq!(r.to_array(), b.to_array());
        }
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", v(1.0, 2.0, 3.0, 4.0)), "F32x4(1, 2, 3, 4)");
    }

    #[test]
    fn array_conversions() {
        let x: F32x4 = [1.0, 2.0, 3.0, 4.0].into();
        let back: [f32; 4] = x.into();
        assert_eq!(back, [1.0, 2.0, 3.0, 4.0]);
    }
}
