//! 8-lane single-precision vector built from two 128-bit halves.
//!
//! Stands in for AVX on machines (or builds) where only SSE is available —
//! exactly the "wider SIMD over the same code" axis the MIC part of the
//! paper explores.

use crate::F32x4;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A vector of eight `f32` lanes (a pair of [`F32x4`]).
///
/// ```
/// use ninja_simd::F32x8;
/// let v = F32x8::splat(2.0) * F32x8::from_fn(|i| i as f32);
/// assert_eq!(v.reduce_sum(), 2.0 * (0..8).sum::<i32>() as f32);
/// ```
#[derive(Copy, Clone, Default, PartialEq)]
pub struct F32x8 {
    lo: F32x4,
    hi: F32x4,
}

impl F32x8 {
    /// Number of lanes.
    pub const LANES: usize = 8;

    /// Broadcasts `v` to all lanes.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self {
            lo: F32x4::splat(v),
            hi: F32x4::splat(v),
        }
    }

    /// The all-zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Builds a vector lane-by-lane from a function of the lane index.
    #[inline(always)]
    pub fn from_fn(mut f: impl FnMut(usize) -> f32) -> Self {
        Self {
            lo: F32x4::new(f(0), f(1), f(2), f(3)),
            hi: F32x4::new(f(4), f(5), f(6), f(7)),
        }
    }

    /// Builds a vector from its two 128-bit halves.
    #[inline(always)]
    pub fn from_halves(lo: F32x4, hi: F32x4) -> Self {
        Self { lo, hi }
    }

    /// Loads eight consecutive lanes from `slice` starting at index 0.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 8`.
    #[inline(always)]
    pub fn from_slice(slice: &[f32]) -> Self {
        assert!(
            slice.len() >= 8,
            "F32x8::from_slice needs at least 8 elements"
        );
        Self {
            lo: F32x4::from_slice(&slice[..4]),
            hi: F32x4::from_slice(&slice[4..8]),
        }
    }

    /// Returns the lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 8] {
        let lo = self.lo.to_array();
        let hi = self.hi.to_array();
        [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]]
    }

    /// Stores all eight lanes into `slice[..8]`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 8`.
    #[inline(always)]
    pub fn write_to_slice(self, slice: &mut [f32]) {
        assert!(
            slice.len() >= 8,
            "F32x8::write_to_slice needs at least 8 elements"
        );
        self.lo.write_to_slice(&mut slice[..4]);
        self.hi.write_to_slice(&mut slice[4..8]);
    }

    /// The low four lanes.
    #[inline(always)]
    pub fn lo(self) -> F32x4 {
        self.lo
    }

    /// The high four lanes.
    #[inline(always)]
    pub fn hi(self) -> F32x4 {
        self.hi
    }

    /// Lane-wise fused-style multiply-add: `self * m + a`.
    #[inline(always)]
    pub fn mul_add(self, m: Self, a: Self) -> Self {
        Self {
            lo: self.lo.mul_add(m.lo, a.lo),
            hi: self.hi.mul_add(m.hi, a.hi),
        }
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        Self {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.min(rhs.hi),
        }
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        Self {
            lo: self.lo.max(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }

    /// Lane-wise IEEE square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        Self {
            lo: self.lo.sqrt(),
            hi: self.hi.sqrt(),
        }
    }

    /// Newton-refined reciprocal square root (see [`F32x4::rsqrt`]).
    #[inline(always)]
    pub fn rsqrt(self) -> Self {
        Self {
            lo: self.lo.rsqrt(),
            hi: self.hi.rsqrt(),
        }
    }

    /// Sum of all eight lanes.
    #[inline(always)]
    pub fn reduce_sum(self) -> f32 {
        (self.lo + self.hi).reduce_sum()
    }
}

macro_rules! impl_binop_8 {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for F32x8 {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                Self {
                    lo: $trait::$method(self.lo, rhs.lo),
                    hi: $trait::$method(self.hi, rhs.hi),
                }
            }
        }
        impl $assign_trait for F32x8 {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: Self) {
                *self = $trait::$method(*self, rhs);
            }
        }
    };
}

impl_binop_8!(Add, add, AddAssign, add_assign);
impl_binop_8!(Sub, sub, SubAssign, sub_assign);
impl_binop_8!(Mul, mul, MulAssign, mul_assign);
impl_binop_8!(Div, div, DivAssign, div_assign);

impl Neg for F32x8 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            lo: -self.lo,
            hi: -self.hi,
        }
    }
}

impl fmt::Debug for F32x8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F32x8({:?})", self.to_array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_extract() {
        let v = F32x8::from_fn(|i| i as f32);
        assert_eq!(v.to_array(), [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(v.lo().to_array(), [0.0, 1.0, 2.0, 3.0]);
        assert_eq!(v.hi().to_array(), [4.0, 5.0, 6.0, 7.0]);
        assert_eq!(F32x8::splat(2.0).to_array(), [2.0; 8]);
    }

    #[test]
    fn arithmetic() {
        let a = F32x8::from_fn(|i| i as f32);
        let b = F32x8::splat(10.0);
        assert_eq!((a + b).to_array()[7], 17.0);
        assert_eq!((b - a).to_array()[3], 7.0);
        assert_eq!((a * b).to_array()[2], 20.0);
        assert_eq!((b / F32x8::splat(2.0)).to_array(), [5.0; 8]);
        assert_eq!((-a).to_array()[1], -1.0);
        assert_eq!(a.mul_add(b, a).to_array()[4], 44.0);
    }

    #[test]
    fn reductions_and_math() {
        let a = F32x8::from_fn(|i| (i + 1) as f32);
        assert_eq!(a.reduce_sum(), 36.0);
        let sq = F32x8::from_fn(|i| ((i + 1) * (i + 1)) as f32);
        assert_eq!(sq.sqrt().to_array(), a.to_array());
        let r = sq.rsqrt().to_array();
        for (i, &x) in r.iter().enumerate() {
            assert!((x - 1.0 / (i + 1) as f32).abs() < 1e-5);
        }
    }

    #[test]
    fn slice_roundtrip() {
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = F32x8::from_slice(&data);
        let mut out = [0.0f32; 8];
        v.write_to_slice(&mut out);
        assert_eq!(&out[..], &data[..8]);
    }

    #[test]
    fn min_max() {
        let a = F32x8::from_fn(|i| i as f32);
        let b = F32x8::splat(3.5);
        assert_eq!(
            a.min(b).to_array(),
            [0.0, 1.0, 2.0, 3.0, 3.5, 3.5, 3.5, 3.5]
        );
        assert_eq!(
            a.max(b).to_array(),
            [3.5, 3.5, 3.5, 3.5, 4.0, 5.0, 6.0, 7.0]
        );
    }
}
