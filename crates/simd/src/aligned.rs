//! Cache-line-aligned numeric buffers.
//!
//! Ninja SSE code of the paper's era relied on 16-byte-aligned loads
//! (`movaps`); aligning to a full 64-byte cache line additionally avoids
//! split-line accesses and false sharing between threads. [`AlignedVec`] is
//! the allocation primitive used by the ninja-tier kernels.

use core::fmt;
use core::ops::{Deref, DerefMut};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};

/// Alignment (bytes) of every [`AlignedVec`] allocation: one cache line.
pub const CACHE_LINE: usize = 64;

mod private {
    /// Seals [`Element`](super::Element) to the numeric primitives for which
    /// an all-zero bit pattern is a valid value.
    pub trait Sealed: Copy {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for i32 {}
    impl Sealed for u32 {}
    impl Sealed for i64 {}
    impl Sealed for u64 {}
    impl Sealed for u8 {}
}

/// Numeric element types storable in an [`AlignedVec`].
///
/// This trait is sealed; it is implemented for `f32`, `f64`, `i32`, `u32`,
/// `i64`, `u64` and `u8` — types whose all-zero bit pattern is a valid value,
/// which lets the buffer be allocated zeroed.
pub trait Element: private::Sealed {}
impl<T: private::Sealed> Element for T {}

/// A fixed-length numeric buffer aligned to a 64-byte cache line.
///
/// Dereferences to a slice, so it can be used anywhere a `&[T]`/`&mut [T]`
/// is expected. Unlike `Vec`, its length is fixed at construction; the
/// kernels size their working sets once up front.
///
/// ```
/// use ninja_simd::AlignedVec;
///
/// let mut buf = AlignedVec::<f32>::zeroed(1024);
/// assert_eq!(buf.len(), 1024);
/// assert_eq!(buf.as_ptr() as usize % 64, 0);
/// buf[0] = 1.5;
/// assert_eq!(buf.iter().sum::<f32>(), 1.5);
/// ```
pub struct AlignedVec<T: Element> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, like Vec<T>; the
// elements are plain numeric values.
unsafe impl<T: Element + Send> Send for AlignedVec<T> {}
unsafe impl<T: Element + Sync> Sync for AlignedVec<T> {}

impl<T: Element> AlignedVec<T> {
    /// Allocates a zero-initialized buffer of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len * size_of::<T>()` overflows `isize`.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: core::ptr::NonNull::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T is a numeric primitive).
        let raw = unsafe { alloc_zeroed(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        Self {
            ptr: raw as *mut T,
            len,
        }
    }

    /// Allocates a buffer of `len` elements, all set to `value`.
    pub fn filled(len: usize, value: T) -> Self {
        let mut v = Self::zeroed(len);
        for slot in v.iter_mut() {
            *slot = value;
        }
        v
    }

    /// Copies `src` into a new aligned buffer.
    pub fn from_slice(src: &[T]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.copy_from_slice(src);
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer as an immutable slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements for the lifetime of self.
        unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The buffer as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: ptr is valid for len elements and uniquely owned.
        unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    fn layout(len: usize) -> Layout {
        let bytes = len
            .checked_mul(core::mem::size_of::<T>())
            .expect("AlignedVec size overflow");
        Layout::from_size_align(bytes, CACHE_LINE).expect("invalid AlignedVec layout")
    }
}

impl<T: Element> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `zeroed` with the identical layout.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) }
        }
    }
}

impl<T: Element> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Element> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Element> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl<T: Element + fmt::Debug> fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("data", &self.as_slice())
            .finish()
    }
}

impl<T: Element + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Element> AsRef<[T]> for AlignedVec<T> {
    #[inline]
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Element> AsMut<[T]> for AlignedVec<T> {
    #[inline]
    fn as_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Element> From<&[T]> for AlignedVec<T> {
    fn from(src: &[T]) -> Self {
        Self::from_slice(src)
    }
}

impl<T: Element> FromIterator<T> for AlignedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let tmp: Vec<T> = iter.into_iter().collect();
        Self::from_slice(&tmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let v = AlignedVec::<f32>::zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn empty_buffer() {
        let v = AlignedVec::<f64>::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f64]);
        let _ = v.clone();
    }

    #[test]
    fn filled_and_from_slice() {
        let v = AlignedVec::filled(5, 3u32);
        assert_eq!(&*v, &[3, 3, 3, 3, 3]);
        let w = AlignedVec::from_slice(&[1i32, 2, 3]);
        assert_eq!(&*w, &[1, 2, 3]);
        let c = w.clone();
        assert_eq!(c, w);
    }

    #[test]
    fn mutation_through_deref() {
        let mut v = AlignedVec::<i64>::zeroed(4);
        v[2] = 42;
        v.as_mut_slice()[3] = 7;
        assert_eq!(&*v, &[0, 0, 42, 7]);
        assert_eq!(v.as_ref(), &*v);
    }

    #[test]
    fn from_iterator() {
        let v: AlignedVec<u8> = (0u8..10).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v[9], 9);
        assert_eq!(v.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn alignment_for_all_types() {
        assert_eq!(AlignedVec::<f32>::zeroed(3).as_ptr() as usize % 64, 0);
        assert_eq!(AlignedVec::<f64>::zeroed(3).as_ptr() as usize % 64, 0);
        assert_eq!(AlignedVec::<u64>::zeroed(3).as_ptr() as usize % 64, 0);
        assert_eq!(AlignedVec::<u8>::zeroed(3).as_ptr() as usize % 64, 0);
    }

    #[test]
    fn debug_shows_len() {
        let v = AlignedVec::<u32>::zeroed(2);
        let s = format!("{v:?}");
        assert!(s.contains("len: 2"));
    }
}
