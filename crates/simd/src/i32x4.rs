//! 4-lane 32-bit integer vector, used for indices, keys, and counters.

use crate::masks::Mask32x4;
use crate::F32x4;
use core::fmt;
use core::ops::{Add, AddAssign, BitAnd, BitOr, BitXor, Mul, Shl, Shr, Sub, SubAssign};

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// A vector of four `i32` lanes.
///
/// Used by the Ninja kernels for SIMD index arithmetic (volume rendering,
/// back-projection), multi-key comparisons (tree search), and counters.
///
/// ```
/// use ninja_simd::I32x4;
/// let a = I32x4::new(1, 2, 3, 4);
/// let b = a + I32x4::splat(10);
/// assert_eq!(b.to_array(), [11, 12, 13, 14]);
/// assert_eq!((b << 1).to_array(), [22, 24, 26, 28]);
/// ```
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct I32x4(pub(crate) IRepr);

#[cfg(target_arch = "x86_64")]
pub(crate) type IRepr = __m128i;
#[cfg(not(target_arch = "x86_64"))]
pub(crate) type IRepr = [i32; 4];

impl I32x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// Builds a vector with the given lanes, lane 0 first.
    #[inline(always)]
    pub fn new(x0: i32, x1: i32, x2: i32, x3: i32) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_set_epi32(x3, x2, x1, x0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([x0, x1, x2, x3])
        }
    }

    /// Broadcasts `v` to all lanes.
    #[inline(always)]
    pub fn splat(v: i32) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_set1_epi32(v))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([v; 4])
        }
    }

    /// The all-zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0)
    }

    /// Loads four consecutive lanes from `slice` starting at index 0.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 4`.
    #[inline(always)]
    pub fn from_slice(slice: &[i32]) -> Self {
        assert!(
            slice.len() >= 4,
            "I32x4::from_slice needs at least 4 elements"
        );
        Self::new(slice[0], slice[1], slice[2], slice[3])
    }

    /// Converts an array into a vector.
    #[inline(always)]
    pub fn from_array(a: [i32; 4]) -> Self {
        Self::new(a[0], a[1], a[2], a[3])
    }

    /// Returns the lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [i32; 4] {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the unaligned store writes exactly LANES elements into a local array of that size; SSE2 is baseline on x86_64.
        unsafe {
            let mut out = [0i32; 4];
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, self.0);
            out
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.0
        }
    }

    /// Stores the four lanes into `slice[..4]`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 4`.
    #[inline(always)]
    pub fn write_to_slice(self, slice: &mut [i32]) {
        assert!(
            slice.len() >= 4,
            "I32x4::write_to_slice needs at least 4 elements"
        );
        slice[..4].copy_from_slice(&self.to_array());
    }

    /// Returns lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline(always)]
    pub fn lane(self, i: usize) -> i32 {
        self.to_array()[i]
    }

    /// Converts lanes to `f32`.
    #[inline(always)]
    pub fn to_f32(self) -> F32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            F32x4(_mm_cvtepi32_ps(self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            F32x4::new(a[0] as f32, a[1] as f32, a[2] as f32, a[3] as f32)
        }
    }

    /// Lane-wise `==` comparison.
    #[inline(always)]
    pub fn simd_eq(self, rhs: Self) -> Mask32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Mask32x4(_mm_castsi128_ps(_mm_cmpeq_epi32(self.0, rhs.0)))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Mask32x4(icmp(self.0, rhs.0, |a, b| a == b))
        }
    }

    /// Lane-wise signed `>` comparison.
    #[inline(always)]
    pub fn simd_gt(self, rhs: Self) -> Mask32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Mask32x4(_mm_castsi128_ps(_mm_cmpgt_epi32(self.0, rhs.0)))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Mask32x4(icmp(self.0, rhs.0, |a, b| a > b))
        }
    }

    /// Lane-wise signed `<` comparison.
    #[inline(always)]
    pub fn simd_lt(self, rhs: Self) -> Mask32x4 {
        rhs.simd_gt(self)
    }

    /// Lane-wise signed minimum (SSE2-compatible compare-and-blend).
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        self.simd_lt(rhs).select_i32(self, rhs)
    }

    /// Lane-wise signed maximum (SSE2-compatible compare-and-blend).
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        self.simd_gt(rhs).select_i32(self, rhs)
    }

    /// Software gather: `[base[idx.lane(0)], .., base[idx.lane(3)]]`.
    ///
    /// Integer counterpart of [`crate::F32x4::gather`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or negative.
    #[inline(always)]
    pub fn gather(base: &[i32], idx: I32x4) -> Self {
        let i = idx.to_array();
        Self::new(
            base[i[0] as usize],
            base[i[1] as usize],
            base[i[2] as usize],
            base[i[3] as usize],
        )
    }

    /// Sum of all four lanes (wrapping).
    #[inline(always)]
    pub fn reduce_sum(self) -> i32 {
        let a = self.to_array();
        a[0].wrapping_add(a[1])
            .wrapping_add(a[2])
            .wrapping_add(a[3])
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn icmp(a: [i32; 4], b: [i32; 4], f: impl Fn(i32, i32) -> bool) -> [u32; 4] {
    let m = |x: bool| if x { u32::MAX } else { 0 };
    [
        m(f(a[0], b[0])),
        m(f(a[1], b[1])),
        m(f(a[2], b[2])),
        m(f(a[3], b[3])),
    ]
}

impl Add for I32x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_add_epi32(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, rhs.0);
            Self([
                a[0].wrapping_add(b[0]),
                a[1].wrapping_add(b[1]),
                a[2].wrapping_add(b[2]),
                a[3].wrapping_add(b[3]),
            ])
        }
    }
}

impl Sub for I32x4 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_sub_epi32(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, rhs.0);
            Self([
                a[0].wrapping_sub(b[0]),
                a[1].wrapping_sub(b[1]),
                a[2].wrapping_sub(b[2]),
                a[3].wrapping_sub(b[3]),
            ])
        }
    }
}

impl Mul for I32x4 {
    type Output = Self;
    /// Lane-wise wrapping multiply.
    ///
    /// SSE2 has no 32-bit `mullo`, so the x86 path combines two widening
    /// multiplies with shuffles — the same sequence SSE2-era Ninja code used.
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            let even = _mm_mul_epu32(self.0, rhs.0); // lanes 0,2 (64-bit)
            let odd = _mm_mul_epu32(_mm_srli_si128::<4>(self.0), _mm_srli_si128::<4>(rhs.0));
            let even_lo = _mm_shuffle_epi32::<0b00_00_10_00>(even);
            let odd_lo = _mm_shuffle_epi32::<0b00_00_10_00>(odd);
            Self(_mm_unpacklo_epi32(even_lo, odd_lo))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, rhs.0);
            Self([
                a[0].wrapping_mul(b[0]),
                a[1].wrapping_mul(b[1]),
                a[2].wrapping_mul(b[2]),
                a[3].wrapping_mul(b[3]),
            ])
        }
    }
}

impl AddAssign for I32x4 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for I32x4 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl BitAnd for I32x4 {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_and_si128(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, rhs.0);
            Self([a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]])
        }
    }
}

impl BitOr for I32x4 {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_or_si128(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, rhs.0);
            Self([a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]])
        }
    }
}

impl BitXor for I32x4 {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_xor_si128(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, rhs.0);
            Self([a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]])
        }
    }
}

impl Shl<i32> for I32x4 {
    type Output = Self;
    #[inline(always)]
    fn shl(self, shift: i32) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_sll_epi32(self.0, _mm_cvtsi32_si128(shift)))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            Self([
                a[0].wrapping_shl(shift as u32),
                a[1].wrapping_shl(shift as u32),
                a[2].wrapping_shl(shift as u32),
                a[3].wrapping_shl(shift as u32),
            ])
        }
    }
}

impl Shr<i32> for I32x4 {
    type Output = Self;
    /// Arithmetic (sign-extending) right shift.
    #[inline(always)]
    fn shr(self, shift: i32) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_sra_epi32(self.0, _mm_cvtsi32_si128(shift)))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let a = self.0;
            Self([a[0] >> shift, a[1] >> shift, a[2] >> shift, a[3] >> shift])
        }
    }
}

impl Default for I32x4 {
    #[inline]
    fn default() -> Self {
        Self::zero()
    }
}

impl PartialEq for I32x4 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.to_array() == other.to_array()
    }
}

impl Eq for I32x4 {}

impl fmt::Debug for I32x4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.to_array();
        write!(f, "I32x4({}, {}, {}, {})", a[0], a[1], a[2], a[3])
    }
}

impl From<[i32; 4]> for I32x4 {
    #[inline]
    fn from(a: [i32; 4]) -> Self {
        Self::from_array(a)
    }
}

impl From<I32x4> for [i32; 4] {
    #[inline]
    fn from(v: I32x4) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_extract() {
        let x = I32x4::new(1, -2, 3, -4);
        assert_eq!(x.to_array(), [1, -2, 3, -4]);
        assert_eq!(x.lane(1), -2);
        assert_eq!(I32x4::splat(9).to_array(), [9; 4]);
        assert_eq!(I32x4::default(), I32x4::zero());
    }

    #[test]
    fn arithmetic_wraps() {
        let a = I32x4::new(i32::MAX, 1, 2, 3);
        let b = I32x4::splat(1);
        assert_eq!((a + b).lane(0), i32::MIN);
        assert_eq!((a - b).to_array(), [i32::MAX - 1, 0, 1, 2]);
        let m = I32x4::new(3, -4, 5, 1 << 20) * I32x4::new(7, 6, -5, 1 << 20);
        assert_eq!(
            m.to_array(),
            [21, -24, -25, (1i32 << 20).wrapping_mul(1 << 20)]
        );
    }

    #[test]
    fn shifts() {
        let a = I32x4::new(1, 2, -8, 16);
        assert_eq!((a << 2).to_array(), [4, 8, -32, 64]);
        assert_eq!((a >> 1).to_array(), [0, 1, -4, 8]); // arithmetic shift
    }

    #[test]
    fn bit_ops() {
        let a = I32x4::new(0b1100, 0b1010, -1, 0);
        let b = I32x4::splat(0b0110);
        assert_eq!((a & b).to_array(), [0b0100, 0b0010, 0b0110, 0]);
        assert_eq!((a | b).to_array(), [0b1110, 0b1110, -1, 0b0110]);
        assert_eq!((a ^ b).to_array(), [0b1010, 0b1100, !0b0110, 0b0110]);
    }

    #[test]
    fn comparisons_and_minmax() {
        let a = I32x4::new(1, 5, -3, 0);
        let b = I32x4::new(2, 5, -4, 1);
        assert_eq!(a.simd_eq(b).bitmask(), 0b0010);
        assert_eq!(a.simd_gt(b).bitmask(), 0b0100);
        assert_eq!(a.simd_lt(b).bitmask(), 0b1001);
        assert_eq!(a.min(b).to_array(), [1, 5, -4, 0]);
        assert_eq!(a.max(b).to_array(), [2, 5, -3, 1]);
    }

    #[test]
    fn conversion_and_reduction() {
        let a = I32x4::new(1, 2, 3, 4);
        assert_eq!(a.to_f32().to_array(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.reduce_sum(), 10);
        assert_eq!(
            I32x4::splat(i32::MAX).reduce_sum(),
            i32::MAX.wrapping_mul(4)
        );
    }

    #[test]
    fn gather_reads_indexed_lanes() {
        let table: Vec<i32> = (0..10).map(|i| i * 100).collect();
        let g = I32x4::gather(&table, I32x4::new(9, 0, 3, 3));
        assert_eq!(g.to_array(), [900, 0, 300, 300]);
    }

    #[test]
    fn slice_roundtrip() {
        let data = [5, 6, 7, 8, 9];
        let v = I32x4::from_slice(&data);
        let mut out = [0i32; 4];
        v.write_to_slice(&mut out);
        assert_eq!(out, [5, 6, 7, 8]);
    }
}
