//! 2-lane double-precision vector.

use crate::masks::Mask64x2;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// A vector of two `f64` lanes.
///
/// Double precision is used by the Monte-Carlo LIBOR kernel, where the
/// paper's reference implementation accumulates in `double`.
///
/// ```
/// use ninja_simd::F64x2;
/// let v = F64x2::new(1.0, 2.0) * F64x2::splat(3.0);
/// assert_eq!(v.to_array(), [3.0, 6.0]);
/// assert_eq!(v.reduce_sum(), 9.0);
/// ```
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x2(pub(crate) DRepr);

#[cfg(target_arch = "x86_64")]
pub(crate) type DRepr = __m128d;
#[cfg(not(target_arch = "x86_64"))]
pub(crate) type DRepr = [f64; 2];

impl F64x2 {
    /// Number of lanes.
    pub const LANES: usize = 2;

    /// Builds a vector with the given lanes, lane 0 first.
    #[inline(always)]
    pub fn new(x0: f64, x1: f64) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_set_pd(x1, x0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([x0, x1])
        }
    }

    /// Broadcasts `v` to both lanes.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_set1_pd(v))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([v; 2])
        }
    }

    /// The all-zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Loads two consecutive lanes from `slice` starting at index 0.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 2`.
    #[inline(always)]
    pub fn from_slice(slice: &[f64]) -> Self {
        assert!(
            slice.len() >= 2,
            "F64x2::from_slice needs at least 2 elements"
        );
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the slice/array length is checked above, so the unaligned load/store stays in bounds; SSE2 is baseline on x86_64.
        unsafe {
            Self(_mm_loadu_pd(slice.as_ptr()))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([slice[0], slice[1]])
        }
    }

    /// Converts an array into a vector.
    #[inline(always)]
    pub fn from_array(a: [f64; 2]) -> Self {
        Self::new(a[0], a[1])
    }

    /// Returns the lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 2] {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the unaligned store writes exactly LANES elements into a local array of that size; SSE2 is baseline on x86_64.
        unsafe {
            let mut out = [0.0f64; 2];
            _mm_storeu_pd(out.as_mut_ptr(), self.0);
            out
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.0
        }
    }

    /// Stores both lanes into `slice[..2]`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 2`.
    #[inline(always)]
    pub fn write_to_slice(self, slice: &mut [f64]) {
        assert!(
            slice.len() >= 2,
            "F64x2::write_to_slice needs at least 2 elements"
        );
        slice[..2].copy_from_slice(&self.to_array());
    }

    /// Returns lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 2`.
    #[inline(always)]
    pub fn lane(self, i: usize) -> f64 {
        self.to_array()[i]
    }

    /// Lane-wise fused-style multiply-add: `self * m + a`.
    #[inline(always)]
    pub fn mul_add(self, m: Self, a: Self) -> Self {
        self * m + a
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_min_pd(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, rhs.0);
            Self([
                if a[0] < b[0] { a[0] } else { b[0] },
                if a[1] < b[1] { a[1] } else { b[1] },
            ])
        }
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_max_pd(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, rhs.0);
            Self([
                if a[0] > b[0] { a[0] } else { b[0] },
                if a[1] > b[1] { a[1] } else { b[1] },
            ])
        }
    }

    /// Lane-wise IEEE square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_sqrt_pd(self.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([self.0[0].sqrt(), self.0[1].sqrt()])
        }
    }

    /// Lane-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            let sign_mask = _mm_castsi128_pd(_mm_set1_epi64x(0x7fff_ffff_ffff_ffff));
            Self(_mm_and_pd(self.0, sign_mask))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([self.0[0].abs(), self.0[1].abs()])
        }
    }

    /// Sum of both lanes.
    #[inline(always)]
    pub fn reduce_sum(self) -> f64 {
        let a = self.to_array();
        a[0] + a[1]
    }

    /// Lane-wise `<` comparison.
    #[inline(always)]
    pub fn simd_lt(self, rhs: Self) -> Mask64x2 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Mask64x2(_mm_cmplt_pd(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let m = |x: bool| if x { u64::MAX } else { 0 };
            Mask64x2([m(self.0[0] < rhs.0[0]), m(self.0[1] < rhs.0[1])])
        }
    }

    /// Lane-wise `>` comparison.
    #[inline(always)]
    pub fn simd_gt(self, rhs: Self) -> Mask64x2 {
        rhs.simd_lt(self)
    }
}

macro_rules! impl_binop_d {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $intrinsic:ident, $op:tt) => {
        impl $trait for F64x2 {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
                unsafe {
                    Self($intrinsic(self.0, rhs.0))
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    Self([self.0[0] $op rhs.0[0], self.0[1] $op rhs.0[1]])
                }
            }
        }
        impl $assign_trait for F64x2 {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: Self) {
                *self = $trait::$method(*self, rhs);
            }
        }
    };
}

impl_binop_d!(Add, add, AddAssign, add_assign, _mm_add_pd, +);
impl_binop_d!(Sub, sub, SubAssign, sub_assign, _mm_sub_pd, -);
impl_binop_d!(Mul, mul, MulAssign, mul_assign, _mm_mul_pd, *);
impl_binop_d!(Div, div, DivAssign, div_assign, _mm_div_pd, /);

impl Neg for F64x2 {
    type Output = Self;
    /// IEEE negation: flips the sign bit, so `-(±0.0)` is `∓0.0`
    /// (`0.0 - x` would lose the zero's sign).
    #[inline(always)]
    fn neg(self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_xor_pd(self.0, _mm_set1_pd(-0.0)))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([-self.0[0], -self.0[1]])
        }
    }
}

impl Default for F64x2 {
    #[inline]
    fn default() -> Self {
        Self::zero()
    }
}

impl PartialEq for F64x2 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.to_array() == other.to_array()
    }
}

impl fmt::Debug for F64x2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.to_array();
        write!(f, "F64x2({}, {})", a[0], a[1])
    }
}

impl From<[f64; 2]> for F64x2 {
    #[inline]
    fn from(a: [f64; 2]) -> Self {
        Self::from_array(a)
    }
}

impl From<F64x2> for [f64; 2] {
    #[inline]
    fn from(v: F64x2) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_extract() {
        let x = F64x2::new(1.5, -2.5);
        assert_eq!(x.to_array(), [1.5, -2.5]);
        assert_eq!(x.lane(0), 1.5);
        assert_eq!(F64x2::splat(3.0).to_array(), [3.0, 3.0]);
    }

    #[test]
    fn arithmetic() {
        let a = F64x2::new(1.0, 2.0);
        let b = F64x2::new(3.0, 4.0);
        assert_eq!((a + b).to_array(), [4.0, 6.0]);
        assert_eq!((a - b).to_array(), [-2.0, -2.0]);
        assert_eq!((a * b).to_array(), [3.0, 8.0]);
        assert_eq!((b / a).to_array(), [3.0, 2.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0]);
        let mut c = a;
        c += b;
        c *= F64x2::splat(2.0);
        c -= a;
        c /= F64x2::splat(2.0);
        assert_eq!(c.to_array(), [3.5, 5.0]);
    }

    #[test]
    fn math_ops() {
        let a = F64x2::new(4.0, 9.0);
        assert_eq!(a.sqrt().to_array(), [2.0, 3.0]);
        assert_eq!(F64x2::new(-1.0, 2.0).abs().to_array(), [1.0, 2.0]);
        let b = F64x2::new(5.0, 1.0);
        assert_eq!(a.min(b).to_array(), [4.0, 1.0]);
        assert_eq!(a.max(b).to_array(), [5.0, 9.0]);
        assert_eq!(a.mul_add(b, a).to_array(), [24.0, 18.0]);
        assert_eq!(a.reduce_sum(), 13.0);
    }

    #[test]
    fn comparisons() {
        let a = F64x2::new(1.0, 9.0);
        let b = F64x2::splat(5.0);
        assert_eq!(a.simd_lt(b).bitmask(), 0b01);
        assert_eq!(a.simd_gt(b).bitmask(), 0b10);
    }

    #[test]
    fn slice_roundtrip() {
        let data = [7.0, 8.0, 9.0];
        let v = F64x2::from_slice(&data);
        let mut out = [0.0; 2];
        v.write_to_slice(&mut out);
        assert_eq!(out, [7.0, 8.0]);
    }
}
