//! 4-lane double-precision vector built from two 128-bit halves.

use crate::F64x2;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A vector of four `f64` lanes (a pair of [`F64x2`]).
///
/// ```
/// use ninja_simd::F64x4;
/// let v = F64x4::from_fn(|i| (i + 1) as f64);
/// assert_eq!(v.reduce_sum(), 10.0);
/// ```
#[derive(Copy, Clone, Default, PartialEq)]
pub struct F64x4 {
    lo: F64x2,
    hi: F64x2,
}

impl F64x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// Broadcasts `v` to all lanes.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self {
            lo: F64x2::splat(v),
            hi: F64x2::splat(v),
        }
    }

    /// The all-zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Builds a vector lane-by-lane from a function of the lane index.
    #[inline(always)]
    pub fn from_fn(mut f: impl FnMut(usize) -> f64) -> Self {
        Self {
            lo: F64x2::new(f(0), f(1)),
            hi: F64x2::new(f(2), f(3)),
        }
    }

    /// Loads four consecutive lanes from `slice` starting at index 0.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 4`.
    #[inline(always)]
    pub fn from_slice(slice: &[f64]) -> Self {
        assert!(
            slice.len() >= 4,
            "F64x4::from_slice needs at least 4 elements"
        );
        Self {
            lo: F64x2::from_slice(&slice[..2]),
            hi: F64x2::from_slice(&slice[2..4]),
        }
    }

    /// Returns the lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        let lo = self.lo.to_array();
        let hi = self.hi.to_array();
        [lo[0], lo[1], hi[0], hi[1]]
    }

    /// Stores all four lanes into `slice[..4]`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 4`.
    #[inline(always)]
    pub fn write_to_slice(self, slice: &mut [f64]) {
        assert!(
            slice.len() >= 4,
            "F64x4::write_to_slice needs at least 4 elements"
        );
        self.lo.write_to_slice(&mut slice[..2]);
        self.hi.write_to_slice(&mut slice[2..4]);
    }

    /// Lane-wise fused-style multiply-add: `self * m + a`.
    #[inline(always)]
    pub fn mul_add(self, m: Self, a: Self) -> Self {
        Self {
            lo: self.lo.mul_add(m.lo, a.lo),
            hi: self.hi.mul_add(m.hi, a.hi),
        }
    }

    /// Lane-wise IEEE square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        Self {
            lo: self.lo.sqrt(),
            hi: self.hi.sqrt(),
        }
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        Self {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.min(rhs.hi),
        }
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        Self {
            lo: self.lo.max(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }

    /// Sum of all four lanes.
    #[inline(always)]
    pub fn reduce_sum(self) -> f64 {
        (self.lo + self.hi).reduce_sum()
    }
}

macro_rules! impl_binop_d4 {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for F64x4 {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                Self {
                    lo: $trait::$method(self.lo, rhs.lo),
                    hi: $trait::$method(self.hi, rhs.hi),
                }
            }
        }
        impl $assign_trait for F64x4 {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: Self) {
                *self = $trait::$method(*self, rhs);
            }
        }
    };
}

impl_binop_d4!(Add, add, AddAssign, add_assign);
impl_binop_d4!(Sub, sub, SubAssign, sub_assign);
impl_binop_d4!(Mul, mul, MulAssign, mul_assign);
impl_binop_d4!(Div, div, DivAssign, div_assign);

impl Neg for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            lo: -self.lo,
            hi: -self.hi,
        }
    }
}

impl fmt::Debug for F64x4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F64x4({:?})", self.to_array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_arithmetic() {
        let a = F64x4::from_fn(|i| i as f64);
        let b = F64x4::splat(2.0);
        assert_eq!((a + b).to_array(), [2.0, 3.0, 4.0, 5.0]);
        assert_eq!((a - b).to_array(), [-2.0, -1.0, 0.0, 1.0]);
        assert_eq!((a * b).to_array(), [0.0, 2.0, 4.0, 6.0]);
        assert_eq!((a / b).to_array(), [0.0, 0.5, 1.0, 1.5]);
        assert_eq!((-a).to_array(), [0.0, -1.0, -2.0, -3.0]);
        assert_eq!(a.mul_add(b, a).to_array(), [0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn math_and_reduce() {
        let a = F64x4::from_fn(|i| ((i + 1) * (i + 1)) as f64);
        assert_eq!(a.sqrt().to_array(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.reduce_sum(), 30.0);
        let b = F64x4::splat(5.0);
        assert_eq!(a.min(b).to_array(), [1.0, 4.0, 5.0, 5.0]);
        assert_eq!(a.max(b).to_array(), [5.0, 5.0, 9.0, 16.0]);
    }

    #[test]
    fn slice_roundtrip() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let v = F64x4::from_slice(&data);
        let mut out = [0.0; 4];
        v.write_to_slice(&mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }
}
