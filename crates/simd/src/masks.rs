//! Lane masks produced by SIMD comparisons, used for branch-free selection.

use crate::{F32x4, F64x2, I32x4};
use core::fmt;
use core::ops::{BitAnd, BitOr, BitXor, Not};

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// A mask over four 32-bit lanes (the result of [`F32x4`]/[`I32x4`]
/// comparisons).
///
/// Each lane is either all-ones (true) or all-zeros (false). Masks support
/// the usual boolean algebra and drive branch-free [`select`](Mask32x4::select),
/// which is how Ninja kernels replace data-dependent branches (e.g. early
/// ray termination in volume rendering) with predication.
///
/// ```
/// use ninja_simd::F32x4;
/// let m = F32x4::new(1.0, 5.0, 2.0, 8.0).simd_gt(F32x4::splat(3.0));
/// assert_eq!(m.bitmask(), 0b1010);
/// assert!(m.any());
/// assert!(!m.all());
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct Mask32x4(pub(crate) MaskRepr32);

#[cfg(target_arch = "x86_64")]
pub(crate) type MaskRepr32 = __m128;
#[cfg(not(target_arch = "x86_64"))]
pub(crate) type MaskRepr32 = [u32; 4];

impl Mask32x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// Mask with all lanes false.
    #[inline(always)]
    pub fn none() -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_setzero_ps())
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([0; 4])
        }
    }

    /// Mask with all lanes true.
    #[inline(always)]
    pub fn all_true() -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_castsi128_ps(_mm_set1_epi32(-1)))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([u32::MAX; 4])
        }
    }

    /// Builds a mask from four booleans, lane 0 first.
    #[inline(always)]
    pub fn from_bools(b0: bool, b1: bool, b2: bool, b3: bool) -> Self {
        let l = |b: bool| if b { -1i32 } else { 0 };
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_castsi128_ps(_mm_set_epi32(l(b3), l(b2), l(b1), l(b0))))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([l(b0) as u32, l(b1) as u32, l(b2) as u32, l(b3) as u32])
        }
    }

    /// Packs lane truth values into the low four bits (lane 0 = bit 0).
    #[inline(always)]
    pub fn bitmask(self) -> u8 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            _mm_movemask_ps(self.0) as u8
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut bits = 0u8;
            for (i, l) in self.0.iter().enumerate() {
                if *l != 0 {
                    bits |= 1 << i;
                }
            }
            bits
        }
    }

    /// True if any lane is true.
    #[inline(always)]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// True if every lane is true.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.bitmask() == 0b1111
    }

    /// Number of true lanes.
    #[inline(always)]
    pub fn count(self) -> u32 {
        self.bitmask().count_ones()
    }

    /// Returns the truth value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline(always)]
    pub fn lane(self, i: usize) -> bool {
        assert!(i < 4, "lane index out of range");
        self.bitmask() & (1 << i) != 0
    }

    /// Lane-wise `if mask { on_true } else { on_false }` for floats.
    #[inline(always)]
    pub fn select(self, on_true: F32x4, on_false: F32x4) -> F32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            // (mask & on_true) | (!mask & on_false)
            F32x4(_mm_or_ps(
                _mm_and_ps(self.0, on_true.0),
                _mm_andnot_ps(self.0, on_false.0),
            ))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut out = [0.0f32; 4];
            let t = on_true.to_array();
            let f = on_false.to_array();
            for i in 0..4 {
                out[i] = if self.0[i] != 0 { t[i] } else { f[i] };
            }
            F32x4::from_array(out)
        }
    }

    /// Lane-wise `if mask { on_true } else { on_false }` for integers.
    #[inline(always)]
    pub fn select_i32(self, on_true: I32x4, on_false: I32x4) -> I32x4 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            let m = _mm_castps_si128(self.0);
            I32x4(_mm_or_si128(
                _mm_and_si128(m, on_true.0),
                _mm_andnot_si128(m, on_false.0),
            ))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut out = [0i32; 4];
            let t = on_true.to_array();
            let f = on_false.to_array();
            for i in 0..4 {
                out[i] = if self.0[i] != 0 { t[i] } else { f[i] };
            }
            I32x4::from_array(out)
        }
    }
}

impl BitAnd for Mask32x4 {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_and_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut out = [0u32; 4];
            for i in 0..4 {
                out[i] = self.0[i] & rhs.0[i];
            }
            Self(out)
        }
    }
}

impl BitOr for Mask32x4 {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_or_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut out = [0u32; 4];
            for i in 0..4 {
                out[i] = self.0[i] | rhs.0[i];
            }
            Self(out)
        }
    }
}

impl BitXor for Mask32x4 {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_xor_ps(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut out = [0u32; 4];
            for i in 0..4 {
                out[i] = self.0[i] ^ rhs.0[i];
            }
            Self(out)
        }
    }
}

impl Not for Mask32x4 {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        self ^ Self::all_true()
    }
}

impl Default for Mask32x4 {
    #[inline]
    fn default() -> Self {
        Self::none()
    }
}

impl PartialEq for Mask32x4 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.bitmask() == other.bitmask()
    }
}

impl Eq for Mask32x4 {}

impl fmt::Debug for Mask32x4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mask32x4({}, {}, {}, {})",
            self.lane(0),
            self.lane(1),
            self.lane(2),
            self.lane(3)
        )
    }
}

/// A mask over two 64-bit lanes (the result of [`F64x2`] comparisons).
///
/// Semantics mirror [`Mask32x4`] with two lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct Mask64x2(pub(crate) MaskRepr64);

#[cfg(target_arch = "x86_64")]
pub(crate) type MaskRepr64 = __m128d;
#[cfg(not(target_arch = "x86_64"))]
pub(crate) type MaskRepr64 = [u64; 2];

impl Mask64x2 {
    /// Number of lanes.
    pub const LANES: usize = 2;

    /// Builds a mask from two booleans, lane 0 first.
    #[inline(always)]
    pub fn from_bools(b0: bool, b1: bool) -> Self {
        let l = |b: bool| if b { -1i64 } else { 0 };
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_castsi128_pd(_mm_set_epi64x(l(b1), l(b0))))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([l(b0) as u64, l(b1) as u64])
        }
    }

    /// Returns the truth value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 2`.
    #[inline(always)]
    pub fn lane(self, i: usize) -> bool {
        assert!(i < 2, "lane index out of range");
        self.bitmask() & (1 << i) != 0
    }

    /// Number of true lanes.
    #[inline(always)]
    pub fn count(self) -> u32 {
        self.bitmask().count_ones()
    }

    /// Mask with all lanes false.
    #[inline(always)]
    pub fn none() -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_setzero_pd())
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([0; 2])
        }
    }

    /// Mask with all lanes true.
    #[inline(always)]
    pub fn all_true() -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_castsi128_pd(_mm_set1_epi32(-1)))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([u64::MAX; 2])
        }
    }

    /// Packs lane truth values into the low two bits (lane 0 = bit 0).
    #[inline(always)]
    pub fn bitmask(self) -> u8 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            _mm_movemask_pd(self.0) as u8
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut bits = 0u8;
            for (i, l) in self.0.iter().enumerate() {
                if *l != 0 {
                    bits |= 1 << i;
                }
            }
            bits
        }
    }

    /// True if any lane is true.
    #[inline(always)]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// True if every lane is true.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.bitmask() == 0b11
    }

    /// Lane-wise `if mask { on_true } else { on_false }` for doubles.
    #[inline(always)]
    pub fn select(self, on_true: F64x2, on_false: F64x2) -> F64x2 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            F64x2(_mm_or_pd(
                _mm_and_pd(self.0, on_true.0),
                _mm_andnot_pd(self.0, on_false.0),
            ))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut out = [0.0f64; 2];
            let t = on_true.to_array();
            let f = on_false.to_array();
            for i in 0..2 {
                out[i] = if self.0[i] != 0 { t[i] } else { f[i] };
            }
            F64x2::from_array(out)
        }
    }
}

impl BitAnd for Mask64x2 {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_and_pd(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([self.0[0] & rhs.0[0], self.0[1] & rhs.0[1]])
        }
    }
}

impl BitOr for Mask64x2 {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_or_pd(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([self.0[0] | rhs.0[0], self.0[1] | rhs.0[1]])
        }
    }
}

impl BitXor for Mask64x2 {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; this intrinsic only reads and writes register lanes.
        unsafe {
            Self(_mm_xor_pd(self.0, rhs.0))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self([self.0[0] ^ rhs.0[0], self.0[1] ^ rhs.0[1]])
        }
    }
}

impl Not for Mask64x2 {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        self ^ Self::all_true()
    }
}

impl Default for Mask64x2 {
    #[inline]
    fn default() -> Self {
        Self::none()
    }
}

impl PartialEq for Mask64x2 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.bitmask() == other.bitmask()
    }
}

impl Eq for Mask64x2 {}

impl fmt::Debug for Mask64x2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bitmask();
        write!(f, "Mask64x2({}, {})", b & 1 != 0, b & 2 != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_algebra() {
        let a = Mask32x4::from_bools(true, false, true, false);
        let b = Mask32x4::from_bools(true, true, false, false);
        assert_eq!((a & b).bitmask(), 0b0001);
        assert_eq!((a | b).bitmask(), 0b0111);
        assert_eq!((a ^ b).bitmask(), 0b0110);
        assert_eq!((!a).bitmask(), 0b1010);
    }

    #[test]
    fn predicates() {
        assert!(!Mask32x4::none().any());
        assert!(Mask32x4::all_true().all());
        assert_eq!(Mask32x4::all_true().count(), 4);
        let m = Mask32x4::from_bools(false, true, false, true);
        assert!(m.any());
        assert!(!m.all());
        assert_eq!(m.count(), 2);
        assert!(!m.lane(0));
        assert!(m.lane(1));
    }

    #[test]
    fn select_i32_lanes() {
        let m = Mask32x4::from_bools(true, false, false, true);
        let t = I32x4::new(1, 2, 3, 4);
        let f = I32x4::new(-1, -2, -3, -4);
        assert_eq!(m.select_i32(t, f).to_array(), [1, -2, -3, 4]);
    }

    #[test]
    fn mask64_basics() {
        assert!(!Mask64x2::none().any());
        assert!(Mask64x2::all_true().all());
        let m = F64x2::new(1.0, 3.0).simd_lt(F64x2::splat(2.0));
        assert_eq!(m.bitmask(), 0b01);
        let s = m.select(F64x2::splat(9.0), F64x2::splat(0.0));
        assert_eq!(s.to_array(), [9.0, 0.0]);
    }

    #[test]
    fn mask64_boolean_algebra_and_lanes() {
        let a = Mask64x2::from_bools(true, false);
        let b = Mask64x2::from_bools(true, true);
        assert_eq!((a & b).bitmask(), 0b01);
        assert_eq!((a | b).bitmask(), 0b11);
        assert_eq!((a ^ b).bitmask(), 0b10);
        assert_eq!((!a).bitmask(), 0b10);
        assert!(a.lane(0) && !a.lane(1));
        assert_eq!(a.count(), 1);
        assert_eq!(Mask64x2::all_true().count(), 2);
    }

    #[test]
    fn default_and_eq() {
        assert_eq!(Mask32x4::default(), Mask32x4::none());
        assert_eq!(Mask64x2::default(), Mask64x2::none());
        assert!(format!("{:?}", Mask32x4::none()).contains("false"));
        assert!(format!("{:?}", Mask64x2::all_true()).contains("true"));
    }
}
