//! Explicit SIMD vectors and vector math for the Ninja-gap reproduction.
//!
//! The ISCA 2012 "Ninja gap" study distinguishes three ways of getting SIMD
//! performance out of a core:
//!
//! 1. **Naive code** — scalar loops the compiler cannot vectorize,
//! 2. **Compiler-vectorized code** — restructured scalar loops (unit stride,
//!    no cross-iteration dependences) that an auto-vectorizer handles, and
//! 3. **Ninja code** — hand-written SIMD intrinsics.
//!
//! This crate is the substrate for tier 3. It provides small, explicit
//! vector types ([`F32x4`], [`F32x8`], [`F64x2`], [`F64x4`], [`I32x4`]) with
//! lane-wise arithmetic, comparisons producing [`Mask32x4`]/[`Mask64x2`],
//! blends, reductions, and software gather — plus the vectorized
//! transcendentals ([`math`]) that the paper's financial kernels obtain from
//! ICC's SVML.
//!
//! # Backends
//!
//! On `x86_64` every operation lowers to SSE2 (and, where the binary is
//! compiled with SSE4.1, a few operations use SSE4.1 forms); on other
//! architectures a portable scalar implementation with identical semantics
//! is used. The two backends are covered by the same test suite, including
//! property tests asserting lane-exact agreement with scalar arithmetic.
//!
//! The 128-bit types are the workhorses: the paper's Westmere machine is a
//! 4-wide (SSE) part, so `F32x4` is exactly the "Ninja" vector width of the
//! original study. `F32x8`/`F64x4` are pairs of 128-bit registers, standing
//! in for AVX on machines where it is unavailable.
//!
//! # Example
//!
//! ```
//! use ninja_simd::F32x4;
//!
//! let a = F32x4::new(1.0, 2.0, 3.0, 4.0);
//! let b = F32x4::splat(10.0);
//! let c = a.mul_add(b, a); // a * b + a
//! assert_eq!(c.to_array(), [11.0, 22.0, 33.0, 44.0]);
//! assert_eq!(c.reduce_sum(), 110.0);
//!
//! // Branch-free selection: keep lanes of `a` greater than 2.5, else 0.
//! let m = a.simd_gt(F32x4::splat(2.5));
//! let kept = m.select(a, F32x4::splat(0.0));
//! assert_eq!(kept.to_array(), [0.0, 0.0, 3.0, 4.0]);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod aligned;
mod f32x4;
mod f32x8;
mod f64x2;
mod f64x4;
mod i32x4;
pub mod isa;
mod masks;
pub mod math;

pub use aligned::{AlignedVec, Element, CACHE_LINE};
pub use f32x4::F32x4;
pub use f32x8::F32x8;
pub use f64x2::F64x2;
pub use f64x4::F64x4;
pub use i32x4::I32x4;
pub use masks::{Mask32x4, Mask64x2};

/// Number of `f32` lanes in the widest vector this crate emulates.
pub const MAX_F32_LANES: usize = 8;

/// Returns a human-readable description of the active SIMD backend.
///
/// Useful for experiment logs: the Ninja-gap harness records which backend
/// produced each measurement.
///
/// ```
/// let b = ninja_simd::backend_name();
/// assert!(b == "x86-64 sse2" || b == "portable scalar");
/// ```
pub fn backend_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        "x86-64 sse2"
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "portable scalar"
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn backend_reported() {
        assert!(!super::backend_name().is_empty());
    }
}
