//! Vectorized transcendental math.
//!
//! The paper's financial kernels (BlackScholes, Libor) are dominated by
//! `exp`/`log`/normal-CDF evaluations; ICC vectorizes them by calling the
//! SVML vector math library. This module is the reproduction's SVML stand-in:
//! Cephes-style polynomial kernels evaluated lane-wise on [`F32x4`]/[`F32x8`].
//!
//! Accuracy targets (tested in this module and by property tests):
//!
//! * [`exp_v4`]: relative error < 1e-6 over `[-87, 88]`.
//! * [`ln_v4`]: relative error < 1e-6 for normal positive inputs.
//! * [`norm_cdf_v4`]: absolute error < 1e-6 over `[-10, 10]`
//!   (Abramowitz & Stegun 26.2.17, the classic Black-Scholes CND).

use crate::{F32x4, F32x8, I32x4};

const EXP_HI: f32 = 88.376_26;
const EXP_LO: f32 = -87.336_54;
const LOG2E: f32 = std::f32::consts::LOG2_E;
// ln(2) split into a high part exactly representable in f32 and a low
// correction, so that `x - n*ln2` stays accurate (Cody-Waite reduction).
const LN2_HI: f32 = 0.693_359_4;
const LN2_LO: f32 = -2.121_944_4e-4;

/// Lane-wise `e^x` on four lanes.
///
/// Inputs are clamped to `[-87.3, 88.4]` (beyond which `f32` under/overflows),
/// then reduced as `x = n·ln2 + r` and reconstructed from a degree-5
/// polynomial in `r` scaled by `2^n`.
///
/// ```
/// use ninja_simd::{F32x4, math};
/// let y = math::exp_v4(F32x4::new(0.0, 1.0, -1.0, 2.0)).to_array();
/// assert!((y[1] - std::f32::consts::E).abs() < 1e-5);
/// ```
#[inline]
pub fn exp_v4(x: F32x4) -> F32x4 {
    let x = x.min(F32x4::splat(EXP_HI)).max(F32x4::splat(EXP_LO));

    // n = round(x / ln2), computed as floor(x*log2e + 0.5).
    let fx = x.mul_add(F32x4::splat(LOG2E), F32x4::splat(0.5)).floor();

    // r = x - n*ln2, in two steps for accuracy.
    let r = x - fx * F32x4::splat(LN2_HI) - fx * F32x4::splat(LN2_LO);

    // Degree-5 minimax polynomial for e^r on [-ln2/2, ln2/2] (Cephes expf).
    let mut p = F32x4::splat(1.987_569_1e-4);
    p = p.mul_add(r, F32x4::splat(1.398_199_9e-3));
    p = p.mul_add(r, F32x4::splat(8.333_452e-3));
    p = p.mul_add(r, F32x4::splat(4.166_579_6e-2));
    p = p.mul_add(r, F32x4::splat(1.666_666_6e-1));
    p = p.mul_add(r, F32x4::splat(0.5));
    let y = p.mul_add(r * r, r + F32x4::splat(1.0));

    // 2^n assembled directly in the exponent field.
    let n = fx.to_i32_trunc();
    let pow2n = F32x4::from_bits((n + I32x4::splat(127)) << 23);
    y * pow2n
}

/// Lane-wise natural logarithm on four lanes.
///
/// Returns a platform-dependent garbage value (not a trap) for
/// non-positive or non-finite lanes, like SVML's fast variants; callers in
/// this workspace only pass positive finite values. Relative error is below
/// 1e-6 for normal positive inputs.
#[inline]
pub fn ln_v4(x: F32x4) -> F32x4 {
    // Decompose x = m * 2^e with m in [sqrt(0.5), sqrt(2)).
    let bits = x.to_bits();
    let exp_raw = (bits >> 23) - I32x4::splat(127);
    // Mantissa with exponent forced to 0 => m in [1, 2).
    let mant_bits = (bits & I32x4::splat(0x007f_ffff)) | I32x4::splat(0x3f80_0000);
    let m = F32x4::from_bits(mant_bits);

    // Fold m into [sqrt(0.5), sqrt(2)): if m > sqrt(2), halve it and bump e.
    let sqrt2 = F32x4::splat(std::f32::consts::SQRT_2);
    let fold = m.simd_gt(sqrt2);
    let m = fold.select(m * F32x4::splat(0.5), m);
    let e = fold.select_i32(exp_raw + I32x4::splat(1), exp_raw).to_f32();

    // ln(m) via atanh identity: ln(m) = 2·atanh((m-1)/(m+1)).
    let one = F32x4::splat(1.0);
    let t = (m - one) / (m + one);
    let t2 = t * t;
    // Degree-4 polynomial in t^2 for 2*atanh(t)/t.
    let mut p = F32x4::splat(2.0 / 9.0);
    p = p.mul_add(t2, F32x4::splat(2.0 / 7.0));
    p = p.mul_add(t2, F32x4::splat(2.0 / 5.0));
    p = p.mul_add(t2, F32x4::splat(2.0 / 3.0));
    p = p.mul_add(t2, F32x4::splat(2.0));
    let ln_m = p * t;

    e.mul_add(F32x4::splat(std::f32::consts::LN_2), ln_m)
}

/// Lane-wise standard normal CDF on four lanes.
///
/// Abramowitz & Stegun 26.2.17 (the formula used by virtually every
/// Black-Scholes benchmark, including the paper's): absolute error < 7.5e-8
/// in exact arithmetic, < 1e-6 here in `f32`.
#[inline]
pub fn norm_cdf_v4(x: F32x4) -> F32x4 {
    let one = F32x4::splat(1.0);
    let ax = x.abs();
    let k = one / ax.mul_add(F32x4::splat(0.231_641_9), one);

    let mut poly = F32x4::splat(1.330_274_5);
    poly = poly.mul_add(k, F32x4::splat(-1.821_255_9));
    poly = poly.mul_add(k, F32x4::splat(1.781_477_9));
    poly = poly.mul_add(k, F32x4::splat(-0.356_563_78));
    poly = poly.mul_add(k, F32x4::splat(0.319_381_54));
    poly *= k;

    // phi(ax) = exp(-ax^2/2) / sqrt(2*pi)
    let inv_sqrt_2pi = F32x4::splat(0.398_942_3);
    let pdf = inv_sqrt_2pi * exp_v4(-(ax * ax) * F32x4::splat(0.5));

    let cdf_pos = one - pdf * poly;
    // Reflect for negative inputs: N(-x) = 1 - N(x).
    x.simd_ge(F32x4::zero()).select(cdf_pos, one - cdf_pos)
}

/// Lane-wise `e^x` on eight lanes (two [`exp_v4`] halves).
#[inline]
pub fn exp_v8(x: F32x8) -> F32x8 {
    F32x8::from_halves(exp_v4(x.lo()), exp_v4(x.hi()))
}

/// Lane-wise natural logarithm on eight lanes (two [`ln_v4`] halves).
#[inline]
pub fn ln_v8(x: F32x8) -> F32x8 {
    F32x8::from_halves(ln_v4(x.lo()), ln_v4(x.hi()))
}

/// Lane-wise standard normal CDF on eight lanes (two [`norm_cdf_v4`] halves).
#[inline]
pub fn norm_cdf_v8(x: F32x8) -> F32x8 {
    F32x8::from_halves(norm_cdf_v4(x.lo()), norm_cdf_v4(x.hi()))
}

/// Scalar standard normal CDF (same A&S 26.2.17 formula, `f64` arithmetic).
///
/// This is the reference the vector version is validated against, and the
/// implementation the *naive* Black-Scholes kernel calls per element.
#[inline]
pub fn norm_cdf_scalar(x: f64) -> f64 {
    let ax = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * ax);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let pdf = (-(ax * ax) * 0.5).exp() * 0.39894228040143267;
    let cdf_pos = 1.0 - pdf * poly;
    if x >= 0.0 {
        cdf_pos
    } else {
        1.0 - cdf_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_v4(f: impl Fn(F32x4) -> F32x4, reference: impl Fn(f32) -> f32, xs: &[f32], tol: f32) {
        for chunk in xs.chunks(4) {
            let mut padded = [chunk[0]; 4];
            padded[..chunk.len()].copy_from_slice(chunk);
            let got = f(F32x4::from_array(padded)).to_array();
            for i in 0..chunk.len() {
                let want = reference(padded[i]);
                let err = (got[i] - want).abs() / want.abs().max(1e-30);
                assert!(
                    err < tol,
                    "x={} got={} want={} rel_err={}",
                    padded[i],
                    got[i],
                    want,
                    err
                );
            }
        }
    }

    #[test]
    fn exp_matches_std() {
        let xs: Vec<f32> = (-860..880).map(|i| i as f32 * 0.1).collect();
        check_v4(exp_v4, f32::exp, &xs, 2e-6);
    }

    #[test]
    fn exp_extreme_inputs_clamped() {
        let y = exp_v4(F32x4::new(-1000.0, 1000.0, 0.0, 88.0)).to_array();
        assert!(y[0] > 0.0 && y[0] < 1e-37, "underflow clamp: {}", y[0]);
        assert!(y[1].is_finite() && y[1] > 1e38, "overflow clamp: {}", y[1]);
        assert!((y[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ln_matches_std() {
        let xs: Vec<f32> = (1..2000)
            .map(|i| i as f32 * 0.05)
            .chain([1e-6, 1e6, 3.3e7, 0.999, 1.001])
            .collect();
        check_v4(ln_v4, f32::ln, &xs, 2e-6);
    }

    #[test]
    fn ln_exp_roundtrip() {
        for &x in &[0.1f32, 0.5, 1.0, 2.0, 10.0, 42.0] {
            let rt = ln_v4(exp_v4(F32x4::splat(x))).lane(0);
            assert!((rt - x).abs() < 1e-4, "roundtrip {x} -> {rt}");
        }
    }

    #[test]
    fn norm_cdf_matches_scalar_reference() {
        for i in -100..=100 {
            let x = i as f32 * 0.1;
            let got = norm_cdf_v4(F32x4::splat(x)).lane(0);
            let want = norm_cdf_scalar(x as f64) as f32;
            assert!((got - want).abs() < 2e-6, "x={x} got={got} want={want}");
        }
    }

    #[test]
    fn norm_cdf_basic_properties() {
        let y = norm_cdf_v4(F32x4::new(0.0, -8.0, 8.0, 1.0)).to_array();
        assert!((y[0] - 0.5).abs() < 1e-6);
        assert!(y[1] < 1e-6);
        assert!(y[2] > 1.0 - 1e-6);
        assert!((y[3] - 0.841_344_7).abs() < 1e-5);
        // Symmetry: N(x) + N(-x) == 1.
        for i in 0..40 {
            let x = i as f32 * 0.25;
            let s = norm_cdf_v4(F32x4::splat(x)).lane(0) + norm_cdf_v4(F32x4::splat(-x)).lane(0);
            assert!((s - 1.0).abs() < 2e-6);
        }
    }

    #[test]
    fn v8_matches_v4_halves() {
        let x = F32x8::from_fn(|i| i as f32 * 0.3 - 1.0);
        assert_eq!(exp_v8(x).to_array()[..4], exp_v4(x.lo()).to_array());
        let pos = F32x8::from_fn(|i| (i + 1) as f32);
        assert_eq!(ln_v8(pos).to_array()[4..], ln_v4(pos.hi()).to_array());
        assert_eq!(
            norm_cdf_v8(x).to_array()[..4],
            norm_cdf_v4(x.lo()).to_array()
        );
    }
}
